"""The end-to-end eavesdropper pipeline.

:class:`WhiteMirrorAttack` is the library's headline public API.  The attacker

1. **trains** on viewing sessions they performed themselves (so the choices —
   the labels — are known) under each client environment they want to cover;
2. **attacks** a victim's captured trace: extract client records, classify
   them with the environment's fingerprint, decode the choice sequence and,
   if the story graph is known, reconstruct the exact path and a behavioural
   profile.

Record extraction is memoised through a :class:`repro.engine.RecordCache`,
so training and attacking the same trace parse it exactly once, and batch
evaluation can fan out over the engine's process pool
(:meth:`WhiteMirrorAttack.evaluate_sessions` with ``parallel=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.classifier import MLRecordClassifier, RecordTypeClassifier
from repro.core.evaluation import AttackEvaluation, evaluate_attack_result
from repro.core.features import ClientRecord, select_streaming_flow
from repro.core.fingerprint import FingerprintAccumulator, FingerprintLibrary
from repro.core.inference import InferredChoices, infer_choices, reconstruct_path
from repro.core.profiling import BehavioralProfile, profile_from_path
from repro.engine.cache import RecordCache
from repro.engine.executor import BatchExecutor
from repro.exceptions import AttackError
from repro.narrative.graph import StoryGraph
from repro.narrative.path import ViewingPath
from repro.net.capture import CapturedTrace
from repro.streaming.session import SessionResult


@dataclass(frozen=True)
class AttackResult:
    """What the attack recovered from one victim trace."""

    condition_key: str
    records: tuple[ClientRecord, ...]
    predicted_labels: tuple[str, ...]
    inferred: InferredChoices
    reconstructed_path: ViewingPath | None
    profile: BehavioralProfile | None

    @property
    def recovered_pattern(self) -> tuple[bool, ...]:
        """The recovered default/non-default pattern."""
        return self.inferred.default_pattern

    def evaluate_against(self, result: SessionResult) -> AttackEvaluation:
        """Score this attack result against the session's ground truth."""
        return evaluate_attack_result(
            records=self.records,
            predicted_labels=self.predicted_labels,
            inferred=self.inferred,
            ground_truth_path=result.path,
        )


def load_attack_trace(
    path: str | Path, client_ip: str, server_ip: str | None = None
) -> CapturedTrace:
    """Parse a victim pcap, resolving the streaming server address **once**.

    When the observer does not know the server address, the streaming
    connection is identified by the largest-downlink-flow heuristic and the
    trace's ``server_ip`` is set to that flow's server — so every later stage
    (record extraction, caching, reporting) sees the same resolved address
    instead of each re-deciding which flow is the streaming flow.
    """
    trace = CapturedTrace.from_pcap(
        path, client_ip=client_ip, server_ip=server_ip or "0.0.0.0"
    )
    if server_ip is None:
        flow = select_streaming_flow(trace)
        trace = replace(trace, server_ip=flow.five_tuple.server.ip)
    return trace


@dataclass(frozen=True)
class PcapAttackTask:
    """One capture file to attack: where it is and how to read it."""

    path: str
    condition_key: str
    client_ip: str
    server_ip: str | None = None

    def describe(self) -> str:
        """Short identity used in engine error messages."""
        return f"{Path(self.path).name} ({self.condition_key})"


def _sidecar_capture_records(
    path: str | Path, client_ip: str, server_ip: str | None
) -> tuple[ClientRecord, ...] | None:
    """The capture's records from a fresh shard sidecar, when provably the
    extraction :func:`load_attack_trace` + the record cache would produce.

    The fast path engages only when the task's addresses match the ones the
    sidecar recorded at generation time: a different ``client_ip`` (or an
    unknown ``server_ip``, which the parse path resolves by the
    largest-flow heuristic) could legitimately change flow selection, and an
    empty column set must fall back so the parse path's "no records" error
    surfaces from the parse path.  Every other case parses the pcap.
    """
    # Imported lazily: the dataset layer builds on core, not the reverse;
    # only this acceleration hook reaches back into it.
    from repro.dataset.sidecar import capture_records_for

    columns = capture_records_for(path)
    if columns is None:
        return None
    if columns.client_ip != client_ip:
        return None
    if server_ip is None or columns.server_ip != server_ip:
        return None
    if columns.record_count == 0:
        return None
    return columns.client_records()


def _attack_pcap_task(attack: "WhiteMirrorAttack", task: PcapAttackTask) -> AttackResult:
    """Module-level worker task for parallel pcap attacks (must be picklable)."""
    return attack.attack_pcap(
        task.path,
        condition_key=task.condition_key,
        client_ip=task.client_ip,
        server_ip=task.server_ip,
    )


def _describe_pcap_task(task: PcapAttackTask) -> str:
    return task.describe()


def _attack_chunk(
    attack: "WhiteMirrorAttack", sessions: Sequence[SessionResult]
) -> list[AttackResult]:
    """Module-level worker task for parallel attacking (must be picklable)."""
    return [attack.attack_session(session) for session in sessions]


def _evaluate_chunk(
    attack: "WhiteMirrorAttack", sessions: Sequence[SessionResult]
) -> list[AttackEvaluation]:
    """Module-level worker task for parallel evaluation (must be picklable)."""
    return [
        attack.attack_session(session).evaluate_against(session)
        for session in sessions
    ]


def _chunked(items: list, chunks: int) -> list[list]:
    """Split into at most ``chunks`` contiguous, order-preserving slices."""
    chunks = max(1, min(chunks, len(items)))
    size, remainder = divmod(len(items), chunks)
    slices: list[list] = []
    start = 0
    for index in range(chunks):
        end = start + size + (1 if index < remainder else 0)
        slices.append(items[start:end])
        start = end
    return slices


class WhiteMirrorAttack:
    """Passive traffic-analysis attack on interactive viewing sessions.

    Parameters
    ----------
    graph:
        The interactive title's story graph, if known to the attacker (it is
        public information — anyone can map it by watching the title).  When
        provided, attacks also reconstruct the concrete path and behavioural
        profile; without it only the default/non-default pattern is recovered.
    band_margin:
        Widening applied to learned record-length bands, absorbing a little
        jitter unseen in training.  The default (8 bytes) comfortably covers
        the residual variability of the state reports even when only a couple
        of labelled sessions are available for an environment, while staying
        far from the nearest "other" traffic band (100+ bytes away).
    record_cache:
        Optional shared extraction cache.  Passing one lets several attack
        instances (or experiment code that also inspects records) reuse each
        other's per-trace extraction work; by default each attack carries
        its own.
    library:
        Optional pre-trained fingerprint library (e.g. loaded from the JSON
        the CLI's ``train`` command writes).  When supplied the attack is
        ready to use without calling :meth:`train`; further training adds to
        the given library in place.
    """

    def __init__(
        self,
        graph: StoryGraph | None = None,
        band_margin: int = 8,
        record_cache: RecordCache | None = None,
        library: FingerprintLibrary | None = None,
    ) -> None:
        if band_margin < 0:
            raise AttackError("band margin must be non-negative")
        self._graph = graph
        self._margin = band_margin
        self._library = library if library is not None else FingerprintLibrary()
        self._records = record_cache if record_cache is not None else RecordCache()

    # -- training ------------------------------------------------------------

    @property
    def library(self) -> FingerprintLibrary:
        """The per-environment fingerprints learned so far."""
        return self._library

    @property
    def classifier(self) -> RecordTypeClassifier:
        """A band classifier over the current fingerprint library."""
        return RecordTypeClassifier(self._library)

    @property
    def record_cache(self) -> RecordCache:
        """The per-trace extraction cache backing this attack."""
        return self._records

    def _records_for(
        self, trace: CapturedTrace, server_ip: str | None = None
    ) -> tuple[ClientRecord, ...]:
        return self._records.records_for(trace, server_ip=server_ip or trace.server_ip)

    def train(self, sessions: Iterable[SessionResult]) -> FingerprintLibrary:
        """Learn fingerprints from labelled (self-collected) sessions.

        Sessions are grouped by their condition's fingerprint key (operating
        system × browser); each group must contain at least one type-1 and
        one type-2 record.
        """
        grouped: dict[str, list[ClientRecord]] = {}
        for session in sessions:
            key = session.condition.fingerprint_key
            records = self._records_for(session.trace)
            grouped.setdefault(key, []).extend(records)
        if not grouped:
            raise AttackError("no training sessions supplied")
        for key, records in grouped.items():
            self._library.learn(key, records, margin=self._margin)
        return self._library

    def train_incremental(
        self,
        shards: Iterable[Iterable[SessionResult]],
        progress: Callable[[int], None] | None = None,
        accumulator: FingerprintAccumulator | None = None,
    ) -> FingerprintLibrary:
        """Learn fingerprints by folding labelled sessions in shard by shard.

        The streaming counterpart of :meth:`train` for calibration corpora
        that do not fit in memory: ``shards`` yields one batch of labelled
        sessions per shard (e.g.
        :meth:`repro.dataset.shards.ShardedDataset.iter_shard_training_sessions`),
        and each session's records are folded into a running
        :class:`~repro.core.fingerprint.FingerprintAccumulator` — only the
        per-environment min/max/count state survives a shard, so peak memory
        is O(shard), not O(corpus).  The finalised fingerprints are identical
        to calling :meth:`train` once over the concatenation of every shard:
        a band depends only on the extreme labelled lengths, which fold.

        ``progress``, when given, is invoked with the running session count
        after each session is folded (the job runner adapts it onto the
        structured event bus as unsized ``progress`` events, so incremental
        training narrates identically to a terminal or a JSONL consumer).
        ``accumulator`` lets the caller supply
        (and keep) the running state — a machine participating in distributed
        calibration folds its local shards in, serialises the accumulator
        (:meth:`FingerprintAccumulator.save`), and the per-machine states are
        later merged into one library (``repro merge-fingerprints``); state
        accumulated before the call (e.g. a previous machine's folded
        records) contributes to the finalised fingerprints exactly as if its
        sessions had been part of ``shards``.
        """
        accumulator = accumulator if accumulator is not None else FingerprintAccumulator()
        folded = 0
        for shard_sessions in shards:
            for session in shard_sessions:
                accumulator.observe(
                    session.condition.fingerprint_key,
                    self._records_for(session.trace),
                )
                folded += 1
                if progress is not None:
                    progress(folded)
        if folded == 0:
            raise AttackError("no training sessions supplied")
        return accumulator.finalize_into(self._library, margin=self._margin)

    def train_ml_classifier(
        self, sessions: Iterable[SessionResult], classifier: MLRecordClassifier
    ) -> MLRecordClassifier:
        """Train a generic ML record classifier on the same labelled sessions.

        Used by the ablation benchmarks; the main pipeline uses the band
        fingerprints.  Extraction goes through the record cache, so training
        both this and :meth:`train` on the same traces parses each exactly
        once.
        """
        records: list[ClientRecord] = []
        for session in sessions:
            records.extend(self._records_for(session.trace))
        if not records:
            raise AttackError("no training sessions supplied")
        return classifier.fit(records)

    # -- attacking -------------------------------------------------------------

    def attack_trace(
        self,
        trace: CapturedTrace,
        condition_key: str,
        server_ip: str | None = None,
    ) -> AttackResult:
        """Run the full attack on one captured trace."""
        records = self._records_for(trace, server_ip=server_ip)
        return self._attack_records(records, condition_key)

    def _attack_records(
        self, records: Sequence[ClientRecord], condition_key: str
    ) -> AttackResult:
        """Classify → infer → reconstruct: the tail every attack path shares.

        The verdict depends only on the extracted records, which is what
        lets the sidecar fast path of :meth:`attack_pcap` skip the parse
        stage yet produce byte-identical results.
        """
        labels = self.classifier.classify(records, condition_key)
        inferred = infer_choices(records, labels)
        path: ViewingPath | None = None
        profile: BehavioralProfile | None = None
        if self._graph is not None and inferred.choice_count > 0:
            path = reconstruct_path(self._graph, inferred)
            profile = profile_from_path(path)
        return AttackResult(
            condition_key=condition_key,
            records=tuple(records),
            predicted_labels=tuple(labels),
            inferred=inferred,
            reconstructed_path=path,
            profile=profile,
        )

    def attack_session(self, session: SessionResult) -> AttackResult:
        """Attack a simulated session (condition taken from its metadata)."""
        return self.attack_trace(
            session.trace,
            condition_key=session.condition.fingerprint_key,
            server_ip=session.trace.server_ip,
        )

    def attack_pcap(
        self,
        path: str | Path,
        condition_key: str,
        client_ip: str,
        server_ip: str | None = None,
    ) -> AttackResult:
        """Run the full attack on one capture file.

        When the capture's directory carries a fresh columnar sidecar
        (:mod:`repro.dataset.sidecar`) recorded for exactly this client and
        server address, the records stream straight out of it — no frame
        parsing, no flow selection, no TLS reassembly — and the verdict is
        byte-identical to the parse path's.  Otherwise (no sidecar, stale
        sidecar, different addresses, unknown server) the trace is parsed
        through :func:`load_attack_trace`, so the streaming flow is resolved
        once and the same server address feeds both the capture metadata and
        record extraction.
        """
        records = _sidecar_capture_records(
            path, client_ip=client_ip, server_ip=server_ip
        )
        if records is not None:
            return self._attack_records(records, condition_key)
        trace = load_attack_trace(path, client_ip=client_ip, server_ip=server_ip)
        return self.attack_trace(
            trace, condition_key=condition_key, server_ip=trace.server_ip
        )

    def iter_attack_pcaps(
        self,
        tasks: Iterable[PcapAttackTask],
        workers: int | None = None,
        progress: Callable[[int, int | None], None] | None = None,
    ) -> Iterator[AttackResult]:
        """Attack a batch of capture files, yielding results in task order.

        Fans record extraction + classification out through the engine's
        streaming :meth:`repro.engine.BatchExecutor.imap` path: with
        ``workers > 1`` each pcap is parsed and attacked in a worker process,
        and results stream back as their input slot completes, so a directory
        of thousands of captures never materialises in memory.  Serial and
        parallel iteration yield identical results.

        ``tasks`` may be any iterable: the live ingest service feeds a lazy
        generator whose production (hashing, metadata resolution) pipelines
        with the attacking of earlier captures, and ``imap`` never
        materialises it.  An empty *sequence* is rejected loudly (a batch
        caller that found no captures made an error upstream); an empty lazy
        iterable simply yields nothing — "no new arrivals" is a normal state
        for a live source.

        Unlike :meth:`attack_batch` (whose payloads are whole in-memory
        traces, hence its one-chunk-per-worker shipping), a pcap task is
        just a path: the attack state pickled with each submission is a few
        KB against the hundreds of KB of capture parsing it buys, so
        per-task submission — and with it per-capture streaming granularity
        — is the better trade here.
        """
        if isinstance(tasks, Sequence) and not tasks:
            raise AttackError("no capture files to attack")
        executor = BatchExecutor(workers)
        yield from executor.imap(
            partial(_attack_pcap_task, self),
            tasks,
            progress=progress,
            label=_describe_pcap_task,
        )

    def attack_batch(
        self,
        sessions: Sequence[SessionResult],
        workers: int | None = None,
    ) -> list[AttackResult]:
        """Attack a batch of sessions, in order.

        ``workers`` follows :class:`repro.engine.BatchExecutor` semantics:
        ``None``/``1`` run serially (sharing this attack's record cache),
        ``0`` uses every core, ``N > 1`` a pool of ``N`` processes.
        Sessions are shipped to the pool in one contiguous chunk per worker,
        so the attack state (fingerprints, graph) is pickled once per worker
        rather than once per session; the record cache crosses the process
        boundary empty by design.
        """
        sessions = list(sessions)
        if not sessions:
            raise AttackError("no sessions to attack")
        executor = BatchExecutor(workers)
        if executor.parallel:
            chunks = executor.map(
                partial(_attack_chunk, self), _chunked(sessions, executor.workers)
            )
            return [result for chunk in chunks for result in chunk]
        return [self.attack_session(session) for session in sessions]

    def evaluate_sessions(
        self,
        sessions: Sequence[SessionResult],
        parallel: bool = False,
        workers: int | None = None,
    ) -> list[AttackEvaluation]:
        """Attack and score a batch of sessions with ground truth.

        ``parallel=True`` fans the per-session work out over the engine's
        process pool using every core; an explicit ``workers`` count also
        enables the pool (with :class:`BatchExecutor` semantics) without
        needing the flag.  Results are identical to the serial path and
        returned in input order.
        """
        sessions = list(sessions)
        if not sessions:
            raise AttackError("no sessions to evaluate")
        if parallel or workers is not None:
            executor = BatchExecutor(0 if parallel and workers is None else workers)
            if executor.parallel:
                chunks = executor.map(
                    partial(_evaluate_chunk, self), _chunked(sessions, executor.workers)
                )
                return [result for chunk in chunks for result in chunk]
        return [
            self.attack_session(session).evaluate_against(session)
            for session in sessions
        ]
