"""Behavioural profiling from recovered choices.

The paper's motivation is that choices "can potentially reveal viewer
information that ranges from benign (e.g., their food and music preferences)
to sensitive (e.g., their affinity to violence and political inclination)".
This module performs that last step: it maps a recovered viewing path onto
the traits each question probes (the trait annotations live with the script
in :mod:`repro.narrative.bandersnatch`) and aggregates them into a profile an
adversary could build per viewer.

The inferences are deliberately simple (each question contributes one signal
for its trait); the point is to demonstrate the privacy consequence, not to
do serious psychometrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.inference import InferredChoices
from repro.exceptions import AttackError
from repro.narrative.bandersnatch import BANDERSNATCH_CHOICE_LABELS, canonical_question_id
from repro.narrative.graph import StoryGraph
from repro.narrative.path import ViewingPath


@dataclass(frozen=True)
class TraitEstimate:
    """The adversary's estimate of one behavioural trait."""

    trait: str
    leaning: str
    evidence_question: str
    selected_label: str

    def __post_init__(self) -> None:
        if not self.trait:
            raise AttackError("trait name must be non-empty")
        if self.leaning not in ("default-leaning", "non-default-leaning"):
            raise AttackError(f"unknown leaning {self.leaning!r}")


@dataclass(frozen=True)
class BehavioralProfile:
    """Aggregated trait estimates for one viewer."""

    estimates: tuple[TraitEstimate, ...]

    @property
    def traits(self) -> tuple[str, ...]:
        """All traits the profile covers."""
        return tuple(estimate.trait for estimate in self.estimates)

    def estimate_for(self, trait: str) -> TraitEstimate:
        """Look up the estimate for one trait."""
        for estimate in self.estimates:
            if estimate.trait == trait:
                return estimate
        raise AttackError(f"profile has no estimate for trait {trait!r}")

    def sensitive_estimates(
        self, sensitive_traits: Sequence[str] = ("violence", "aggression", "risk_taking")
    ) -> tuple[TraitEstimate, ...]:
        """The subset of estimates the paper calls out as sensitive."""
        return tuple(e for e in self.estimates if e.trait in set(sensitive_traits))

    def as_dict(self) -> dict[str, str]:
        """trait -> selected label (compact report form)."""
        return {estimate.trait: estimate.selected_label for estimate in self.estimates}


def profile_from_path(path: ViewingPath) -> BehavioralProfile:
    """Build a profile from a (ground-truth or reconstructed) viewing path."""
    estimates: list[TraitEstimate] = []
    for record in path.choices:
        canonical = canonical_question_id(record.question_id)
        if canonical not in BANDERSNATCH_CHOICE_LABELS:
            continue
        trait, _default_label, _alternate_label = BANDERSNATCH_CHOICE_LABELS[canonical]
        estimates.append(
            TraitEstimate(
                trait=trait,
                leaning="default-leaning" if record.took_default else "non-default-leaning",
                evidence_question=canonical,
                selected_label=record.selected_label,
            )
        )
    return BehavioralProfile(estimates=tuple(estimates))


def profile_from_choices(
    graph: StoryGraph, inferred: InferredChoices
) -> BehavioralProfile:
    """Build a profile directly from the attack's inferred choices."""
    from repro.core.inference import reconstruct_path

    return profile_from_path(reconstruct_path(graph, inferred))


def profile_agreement(
    recovered: BehavioralProfile, ground_truth: BehavioralProfile
) -> float:
    """Fraction of ground-truth traits whose recovered label matches.

    Used by the evaluation to quantify how much behavioural information the
    attack actually leaks end to end.
    """
    truth: Mapping[str, str] = ground_truth.as_dict()
    if not truth:
        raise AttackError("ground-truth profile is empty")
    recovered_map = recovered.as_dict()
    matches = sum(
        1 for trait, label in truth.items() if recovered_map.get(trait) == label
    )
    return matches / len(truth)
