"""Scoring the attack against ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.features import ClientRecord, LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2
from repro.core.inference import InferredChoices
from repro.exceptions import AttackError
from repro.ml.metrics import ConfusionMatrix, accuracy_score
from repro.narrative.path import ViewingPath


@dataclass(frozen=True)
class AttackEvaluation:
    """Per-session scores of the attack.

    Two accuracies matter:

    * :attr:`json_identification_accuracy` — over every record that either is
      or was predicted to be a state report, the fraction labelled correctly.
      This is the quantity the paper quotes ("identify the two types of JSON
      files with 96 % accuracy").
    * :attr:`choice_accuracy` — the stricter end-to-end metric: the fraction
      of the viewer's actual choices whose recovered value (default vs
      non-default) is correct under index alignment.
    """

    ground_truth_choices: int
    inferred_choices: int
    correct_choices: int
    record_accuracy: float
    true_json_records: int
    correct_json_records: int
    false_positive_json_records: int
    missed_json_records: int

    @property
    def choice_accuracy(self) -> float:
        """Fraction of the viewer's actual choices the attack recovered correctly."""
        if self.ground_truth_choices == 0:
            raise AttackError("session has no ground-truth choices to score")
        return self.correct_choices / self.ground_truth_choices

    @property
    def json_identification_accuracy(self) -> float:
        """Accuracy of state-report identification (the paper's 96 % metric).

        Denominator: records that are truly type-1/type-2 plus false
        positives (records wrongly flagged as state reports); numerator: true
        state reports labelled with the correct type.
        """
        denominator = self.true_json_records + self.false_positive_json_records
        if denominator == 0:
            raise AttackError("session contains no state-report records to score")
        return self.correct_json_records / denominator

    @property
    def exact_path_recovered(self) -> bool:
        """Whether every single choice (and hence the full path) was recovered."""
        return (
            self.inferred_choices == self.ground_truth_choices
            and self.correct_choices == self.ground_truth_choices
        )

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary for report tables."""
        return {
            "ground_truth_choices": float(self.ground_truth_choices),
            "inferred_choices": float(self.inferred_choices),
            "correct_choices": float(self.correct_choices),
            "choice_accuracy": self.choice_accuracy,
            "json_identification_accuracy": self.json_identification_accuracy,
            "record_accuracy": self.record_accuracy,
            "false_positive_json_records": float(self.false_positive_json_records),
            "missed_json_records": float(self.missed_json_records),
        }


def evaluate_record_classification(
    records: Sequence[ClientRecord], predicted_labels: Sequence[str]
) -> ConfusionMatrix:
    """Confusion matrix of record-type classification against annotations."""
    if len(records) != len(predicted_labels):
        raise AttackError("records and predicted labels differ in length")
    truth = []
    for record in records:
        if record.label is None:
            raise AttackError("cannot evaluate against unlabelled records")
        truth.append(record.label)
    return ConfusionMatrix.from_predictions(truth, list(predicted_labels))


def _choice_correctness(
    inferred_pattern: Sequence[bool], truth_pattern: Sequence[bool]
) -> int:
    """Number of ground-truth choices recovered correctly (index alignment).

    The i-th inferred question is compared against the i-th actual question;
    missing or surplus questions count as errors.  This is the conservative
    scoring used for the headline number.
    """
    correct = 0
    for index, actual in enumerate(truth_pattern):
        if index < len(inferred_pattern) and inferred_pattern[index] == actual:
            correct += 1
    return correct


def evaluate_attack_result(
    records: Sequence[ClientRecord],
    predicted_labels: Sequence[str],
    inferred: InferredChoices,
    ground_truth_path: ViewingPath,
) -> AttackEvaluation:
    """Score one session end to end.

    ``records``/``predicted_labels`` score the record-classification stage
    (requires annotated records); ``inferred`` vs ``ground_truth_path``
    scores the recovered choices.
    """
    confusion = evaluate_record_classification(records, predicted_labels)
    false_positives = 0
    missed = 0
    true_json = 0
    correct_json = 0
    for record, predicted in zip(records, predicted_labels):
        truly_json = record.label in (LABEL_TYPE1, LABEL_TYPE2)
        predicted_json = predicted in (LABEL_TYPE1, LABEL_TYPE2)
        if truly_json:
            true_json += 1
            if predicted == record.label:
                correct_json += 1
            else:
                missed += 1
        elif predicted_json:
            false_positives += 1
    truth_pattern = ground_truth_path.default_pattern
    inferred_pattern = inferred.default_pattern
    correct = _choice_correctness(inferred_pattern, truth_pattern)
    return AttackEvaluation(
        ground_truth_choices=len(truth_pattern),
        inferred_choices=len(inferred_pattern),
        correct_choices=correct,
        record_accuracy=confusion.accuracy,
        true_json_records=true_json,
        correct_json_records=correct_json,
        false_positive_json_records=false_positives,
        missed_json_records=missed,
    )


def aggregate_choice_accuracy(evaluations: Sequence[AttackEvaluation]) -> float:
    """Overall fraction of choices recovered across many sessions."""
    if not evaluations:
        raise AttackError("cannot aggregate an empty evaluation list")
    total = sum(e.ground_truth_choices for e in evaluations)
    correct = sum(e.correct_choices for e in evaluations)
    if total == 0:
        raise AttackError("no ground-truth choices across the sessions")
    return correct / total


def aggregate_json_identification_accuracy(
    evaluations: Sequence[AttackEvaluation],
) -> float:
    """Overall state-report identification accuracy across many sessions."""
    if not evaluations:
        raise AttackError("cannot aggregate an empty evaluation list")
    denominator = sum(
        e.true_json_records + e.false_positive_json_records for e in evaluations
    )
    correct = sum(e.correct_json_records for e in evaluations)
    if denominator == 0:
        raise AttackError("no state-report records across the sessions")
    return correct / denominator


def worst_case_accuracy(per_condition: dict[str, float]) -> tuple[str, float]:
    """The condition with the lowest accuracy and its value (the paper's 96%)."""
    if not per_condition:
        raise AttackError("no per-condition accuracies supplied")
    condition = min(per_condition, key=per_condition.get)
    return condition, per_condition[condition]
