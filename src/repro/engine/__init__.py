"""Batch execution engine: declarative session plans over a process pool.

Every experiment in this reproduction boils down to the same shape of work:
simulate a grid of viewing sessions (graph × condition × behaviour × seed),
then run the attack over the resulting traces.  The seed repo did both
serially, one session at a time; this package turns the first half into a
declarative, parallelisable substrate and gives the second half a shared
record-extraction cache.

Components
----------

:class:`~repro.engine.plan.SessionPlan`
    A frozen, picklable description of one session to simulate: the story
    graph, the operational condition, the viewer behaviour and the seed
    (plus optional config, prebuilt manifest, forced choices and session
    id).  ``plan.execute()`` produces exactly the :class:`SessionResult`
    that calling :func:`repro.streaming.session.simulate_session` with the
    same arguments would.

:class:`~repro.engine.executor.BatchExecutor`
    Fans a sequence of plans out over a ``concurrent.futures`` process pool
    and returns the results **in plan order**.  ``workers=None`` (or ``1``)
    runs serially in-process — the fallback determinism tests compare
    against; ``workers=0`` uses every core.  Worker failures surface as
    :class:`repro.exceptions.EngineError` naming the failed plan, never as
    a hang.  Because all randomness flows through
    :func:`repro.utils.rng.derive_seed`, serial and parallel execution of
    the same plans produce byte-identical results — that equivalence is the
    engine's core correctness contract.  For batches too large to
    materialise, ``imap``/``iexecute`` are the streaming variants: order-
    preserving generators with a bounded in-flight window, the same failure
    model, and the same byte-equivalence — the sharded dataset pipeline
    (:mod:`repro.dataset.shards`) runs entirely on them.

:class:`~repro.engine.cache.RecordCache`
    Memoises :func:`repro.core.features.extract_client_records` per trace,
    so training and attacking the same capture never re-parses it.
    :class:`repro.core.pipeline.WhiteMirrorAttack` carries one internally
    and experiments can share a cache across several attack instances.

Usage
-----

Generate a dataset-sized batch of sessions on four workers::

    from repro.engine import BatchExecutor, SessionPlan
    from repro.utils.rng import derive_seed

    plans = [
        SessionPlan(
            graph=graph,
            condition=condition,
            behavior=behavior,
            seed=derive_seed(root_seed, "my-experiment", index),
            session_id=f"session-{index}",
        )
        for index in range(100)
    ]
    sessions = BatchExecutor(workers=4).execute(plans)   # in plan order

Attack them in parallel with a shared extraction cache::

    from repro.core.pipeline import WhiteMirrorAttack

    attack = WhiteMirrorAttack(graph=graph)
    attack.train(sessions[:10])                       # fills the cache
    evaluations = attack.evaluate_sessions(sessions[10:], parallel=True)

The higher layers are already routed through the engine:
``IITMBandersnatchDataset.generate(..., workers=N)``,
``reproduce_headline(..., workers=N)`` and the other experiment drivers all
build plans and submit them as one batch, and the CLI exposes the same knob
as ``--workers``.
"""

from __future__ import annotations

from repro.engine.cache import CacheStats, RecordCache
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import EngineError

__all__ = [
    "BatchExecutor",
    "CacheStats",
    "EngineError",
    "RecordCache",
    "SessionPlan",
]
