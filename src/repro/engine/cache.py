"""Per-trace client-record extraction cache.

Parsing the TLS records out of a captured trace
(:func:`repro.core.features.extract_client_records`) walks every uplink
packet of the streaming flow — a few thousand packets per session.  The
attack pipeline historically did that walk once per *use* of a trace:
training, ML-ablation training and attacking the same capture each paid for
their own pass.  :class:`RecordCache` memoises the extraction per
``(trace, server_ip)`` so one pass serves every consumer.

Entries are keyed by object identity and guarded by a weak reference: when a
trace is garbage collected its cache entry evaporates, and a recycled
``id()`` can never serve stale records.  The cache deliberately does not
pickle its entries — a cache shipped to a worker process arrives empty and
warms up locally.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.features import ClientRecord
    from repro.net.capture import CapturedTrace


@dataclass(frozen=True)
class CacheStats:
    """Counters describing how much work the cache has saved."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RecordCache:
    """Memoises client-record extraction per captured trace."""

    def __init__(self) -> None:
        self._entries: dict[
            tuple[int, str | None],
            tuple[weakref.ref, tuple["ClientRecord", ...]],
        ] = {}
        self._hits = 0
        self._misses = 0

    def records_for(
        self, trace: "CapturedTrace", server_ip: str | None = None
    ) -> tuple["ClientRecord", ...]:
        """The trace's client records, extracting them on first use."""
        from repro.core.features import extract_client_records

        key = (id(trace), server_ip)
        entry = self._entries.get(key)
        if entry is not None:
            ref, records = entry
            if ref() is trace:
                self._hits += 1
                return records
        records = tuple(extract_client_records(trace, server_ip=server_ip))
        self._misses += 1
        ref = weakref.ref(trace, lambda _dead, key=key: self._entries.pop(key, None))
        self._entries[key] = (ref, records)
        return records

    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters and the current entry count."""
        return CacheStats(hits=self._hits, misses=self._misses, entries=len(self._entries))

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # -- pickling ----------------------------------------------------------
    # Weak references cannot be pickled, and identity keys would be
    # meaningless in another process anyway: a cache always crosses process
    # boundaries empty.

    def __getstate__(self) -> dict[str, int]:
        return {"hits": self._hits, "misses": self._misses}

    def __setstate__(self, state: dict[str, int]) -> None:
        self._entries = {}
        self._hits = int(state.get("hits", 0))
        self._misses = int(state.get("misses", 0))
