"""Declarative description of one session to simulate.

A :class:`SessionPlan` captures every input of
:func:`repro.streaming.session.simulate_session` in a frozen, picklable
value object, so batches of sessions can be described up front, shipped to
worker processes, and replayed deterministically: the same plan always
produces the same :class:`SessionResult`, no matter where or when it runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.media.manifest import MediaManifest
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig, SessionResult, simulate_session


@dataclass(frozen=True)
class SessionPlan:
    """One simulated viewing session, described but not yet executed.

    Parameters
    ----------
    graph:
        The interactive title's story graph.
    condition:
        The operational condition (OS × device × browser × network × time).
    behavior:
        The viewer behaviour model driving the choices.
    seed:
        The session seed.  Callers must derive it through
        :func:`repro.utils.rng.derive_seed` from their experiment's root
        seed, so the plan is reproducible independent of execution order.
    config:
        Optional session configuration; ``None`` means the defaults.
    manifest:
        Optional prebuilt media manifest.  Supplying one avoids rebuilding
        it per session; the manifest built from ``graph`` and ``config`` is
        itself deterministic, so this is purely an optimisation.
    forced_choices:
        Optional scripted default/non-default decisions (Figure 1 style).
    session_id:
        Identifier stamped into the result; defaults to ``session-<seed>``.
    """

    graph: StoryGraph
    condition: OperationalCondition
    behavior: ViewerBehavior
    seed: int
    config: SessionConfig | None = None
    manifest: MediaManifest | None = None
    forced_choices: tuple[bool, ...] | None = None
    session_id: str | None = None

    def __post_init__(self) -> None:
        if self.forced_choices is not None and not isinstance(self.forced_choices, tuple):
            object.__setattr__(self, "forced_choices", tuple(self.forced_choices))

    def describe(self) -> str:
        """Short human-readable identity used in engine error messages."""
        if self.session_id is not None:
            return self.session_id
        return f"{self.condition.fingerprint_key}/seed-{self.seed}"

    def execute(self) -> SessionResult:
        """Run the simulation this plan describes."""
        return simulate_session(
            graph=self.graph,
            condition=self.condition,
            behavior=self.behavior,
            seed=self.seed,
            config=self.config,
            manifest=self.manifest,
            forced_choices=self.forced_choices,
            session_id=self.session_id,
        )
