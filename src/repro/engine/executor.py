"""Order-preserving batch execution over a process pool.

:class:`BatchExecutor` is the engine's scheduler: it takes a sequence of
:class:`~repro.engine.plan.SessionPlan` objects (or any picklable items plus
a picklable function, via :meth:`BatchExecutor.map`), fans them out over a
``concurrent.futures.ProcessPoolExecutor``, and returns the results in input
order.  A serial in-process path (``workers=None`` or ``1``) exists both as
the zero-dependency fallback and as the reference the determinism tests
compare parallel runs against.

Batches too large to materialise go through the streaming variants
:meth:`BatchExecutor.imap` / :meth:`BatchExecutor.iexecute`: order-preserving
generators that keep at most a bounded window of items in flight and yield
each result as its input slot completes, with the same failure model and the
same serial/parallel byte-equivalence as the list-returning methods.

Failure model: a plan that raises inside a worker — or a worker process that
dies outright (``BrokenProcessPool``) — surfaces as a single
:class:`repro.exceptions.EngineError` naming the failed item, with the
original exception chained.  The pool is shut down before the error
propagates, so a crashed batch never hangs the caller.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Iterator, Sequence, Sized, TypeVar

from repro.engine.plan import SessionPlan
from repro.exceptions import EngineError
from repro.streaming.session import SessionResult

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback signature: ``(completed, total)``.  The streaming
#: methods pass ``total=None`` when the input is an unsized iterable (a live
#: source whose length is unknowable up front).  This is the one progress
#: contract shared across the stack: the dataset generators annotate their
#: ``progress`` parameters with it, and the jobs layer
#: (:class:`repro.jobs.runner.JobRunner`) implements it with adapters that
#: emit structured ``progress`` events on the run's event bus.
ProgressCallback = Callable[[int, "int | None"], None]


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request to an effective pool size.

    ``None`` and ``1`` mean serial execution, ``0`` means one worker per
    available core, any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise EngineError(f"worker count must be non-negative, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return int(workers)


def _execute_plan(plan: SessionPlan) -> SessionResult:
    """Module-level worker entry point (must be picklable)."""
    return plan.execute()


class BatchExecutor:
    """Executes batches of session plans, serially or on a process pool.

    Parameters
    ----------
    workers:
        ``None``/``1`` → serial in-process execution; ``0`` → one worker per
        core; ``N > 1`` → a pool of ``N`` processes.
    """

    def __init__(self, workers: int | None = None) -> None:
        self._workers = resolve_workers(workers)

    @property
    def workers(self) -> int:
        """The effective worker count this executor runs with."""
        return self._workers

    @property
    def parallel(self) -> bool:
        """Whether this executor uses a process pool."""
        return self._workers > 1

    def execute(
        self,
        plans: Sequence[SessionPlan],
        progress: ProgressCallback | None = None,
    ) -> list[SessionResult]:
        """Simulate every plan and return the results in plan order."""
        return self.map(_execute_plan, plans, progress=progress, label=_describe_plan)

    def iexecute(
        self,
        plans: Iterable[SessionPlan],
        progress: ProgressCallback | None = None,
        window: int | None = None,
    ) -> Iterator[SessionResult]:
        """Streaming variant of :meth:`execute`: yield results in plan order.

        See :meth:`imap` for the windowing and failure semantics.
        """
        return self.imap(
            _execute_plan, plans, progress=progress, label=_describe_plan, window=window
        )

    def map(
        self,
        function: Callable[[T], R],
        items: Sequence[T],
        progress: ProgressCallback | None = None,
        label: Callable[[T], str] | None = None,
    ) -> list[R]:
        """Apply ``function`` to every item, preserving input order.

        On the parallel path both ``function`` and the items must be
        picklable (module-level functions and ``functools.partial`` of them
        qualify).  Failures are wrapped into :class:`EngineError` exactly as
        for :meth:`execute`.
        """
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return self._run_serial(function, items, progress, label)
        return self._run_parallel(function, items, progress, label)

    def imap(
        self,
        function: Callable[[T], R],
        items: Iterable[T],
        progress: ProgressCallback | None = None,
        label: Callable[[T], str] | None = None,
        window: int | None = None,
    ) -> Iterator[R]:
        """Lazily apply ``function`` to every item, preserving input order.

        The streaming counterpart of :meth:`map`: an order-preserving
        generator that yields each result as soon as its *input slot* has
        completed, instead of materialising the whole batch.  On the parallel
        path at most ``window`` items (default ``2 × workers``) are in flight
        at once, so memory stays bounded by the window however long the input
        is; on the serial path items are executed one ``next()`` at a time.

        ``items`` may be any iterable, including an unbounded generator (the
        live capture-ingest path feeds one): the input is consumed lazily —
        never materialised — pulling just far enough ahead to keep the
        in-flight window full, so producing an item (hashing a capture,
        building a task) pipelines with executing earlier ones.

        Failures follow the :meth:`execute` model — the first failed item
        surfaces as a single :class:`EngineError` naming it, outstanding
        futures are cancelled and the pool is shut down before the error
        propagates.  Abandoning the generator early also shuts the pool down.
        Because the items carry their own seeds, serial and parallel
        iteration produce byte-identical results in the same order.

        ``progress`` is invoked as ``(yielded, total)`` each time a result
        is handed to the consumer; ``total`` is ``None`` when ``items`` is
        not sized.
        """
        total = len(items) if isinstance(items, Sized) else None
        if not self.parallel or (total is not None and total <= 1):
            return self._iter_serial(function, items, total, progress, label)
        return self._iter_parallel(function, items, total, progress, label, window)

    # -- internal ----------------------------------------------------------

    def _run_serial(
        self,
        function: Callable[[T], R],
        items: list[T],
        progress: ProgressCallback | None,
        label: Callable[[T], str] | None,
    ) -> list[R]:
        results: list[R] = []
        for index, item in enumerate(items):
            try:
                results.append(function(item))
            except EngineError:
                raise
            except Exception as error:
                raise _wrap_failure(index, item, label, error, serial=True) from error
            if progress is not None:
                progress(index + 1, len(items))
        return results

    def _run_parallel(
        self,
        function: Callable[[T], R],
        items: list[T],
        progress: ProgressCallback | None,
        label: Callable[[T], str] | None,
    ) -> list[R]:
        results: list[R | None] = [None] * len(items)
        with ProcessPoolExecutor(max_workers=min(self._workers, len(items))) as pool:
            futures: dict[Future, int] = {
                pool.submit(function, item): index for index, item in enumerate(items)
            }
            # Harvest in completion order so progress reflects work actually
            # done (input-order harvesting would stall the callback on a slow
            # early item); results still land in their input slots.
            completed = 0
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except Exception as error:
                    # Cancel whatever has not started; the context manager
                    # joins the pool so the error never leaves orphans.
                    for pending in futures:
                        pending.cancel()
                    if isinstance(error, EngineError):
                        raise
                    raise _wrap_failure(
                        index, items[index], label, error, serial=False
                    ) from error
                completed += 1
                if progress is not None:
                    progress(completed, len(items))
        return results  # type: ignore[return-value]

    def _iter_serial(
        self,
        function: Callable[[T], R],
        items: Iterable[T],
        total: int | None,
        progress: ProgressCallback | None,
        label: Callable[[T], str] | None,
    ) -> Iterator[R]:
        for index, item in enumerate(items):
            try:
                result = function(item)
            except EngineError:
                raise
            except Exception as error:
                raise _wrap_failure(index, item, label, error, serial=True) from error
            if progress is not None:
                progress(index + 1, total)
            yield result

    def _iter_parallel(
        self,
        function: Callable[[T], R],
        items: Iterable[T],
        total: int | None,
        progress: ProgressCallback | None,
        label: Callable[[T], str] | None,
        window: int | None,
    ) -> Iterator[R]:
        if window is None:
            window = 2 * self._workers
        if window < 1:
            raise EngineError(f"in-flight window must be positive, got {window}")
        source = iter(items)
        try:
            first_item = next(source)
        except StopIteration:
            return  # no pool spawned for an empty lazy source
        workers = self._workers if total is None else min(self._workers, total)
        pool = ProcessPoolExecutor(max_workers=workers)
        # Futures ride with their item and input index so a failure can be
        # named without ever materialising the input sequence.
        in_flight: deque[tuple[int, T, Future]] = deque()
        in_flight.append((0, first_item, pool.submit(function, first_item)))
        next_index = 1
        yielded = 0

        def submit_next() -> bool:
            nonlocal next_index
            try:
                item = next(source)
            except StopIteration:
                return False
            in_flight.append((next_index, item, pool.submit(function, item)))
            next_index += 1
            return True

        try:
            while len(in_flight) < window and submit_next():
                pass
            while in_flight:
                index, item, future = in_flight.popleft()
                try:
                    result = future.result()
                except Exception as error:
                    for _, _, pending in in_flight:
                        pending.cancel()
                    if isinstance(error, EngineError):
                        raise
                    raise _wrap_failure(
                        index, item, label, error, serial=False
                    ) from error
                submit_next()
                yielded += 1
                if progress is not None:
                    progress(yielded, total)
                yield result
        finally:
            # Runs on exhaustion, failure and abandonment alike: nothing the
            # consumer does can leave orphaned worker processes behind.
            pool.shutdown(wait=True, cancel_futures=True)


def _describe_plan(plan: SessionPlan) -> str:
    return plan.describe()


def _wrap_failure(
    index: int,
    item: object,
    label: Callable[[T], str] | None,
    error: Exception,
    serial: bool,
) -> EngineError:
    name = label(item) if label is not None else f"item {index}"  # type: ignore[arg-type]
    where = "in-process" if serial else "in a worker process"
    return EngineError(
        f"batch item {index} ({name}) failed {where}: "
        f"{type(error).__name__}: {error}"
    )
