"""Order-preserving batch execution over a process pool.

:class:`BatchExecutor` is the engine's scheduler: it takes a sequence of
:class:`~repro.engine.plan.SessionPlan` objects (or any picklable items plus
a picklable function, via :meth:`BatchExecutor.map`), fans them out over a
``concurrent.futures.ProcessPoolExecutor``, and returns the results in input
order.  A serial in-process path (``workers=None`` or ``1``) exists both as
the zero-dependency fallback and as the reference the determinism tests
compare parallel runs against.

Failure model: a plan that raises inside a worker — or a worker process that
dies outright (``BrokenProcessPool``) — surfaces as a single
:class:`repro.exceptions.EngineError` naming the failed item, with the
original exception chained.  The pool is shut down before the error
propagates, so a crashed batch never hangs the caller.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.engine.plan import SessionPlan
from repro.exceptions import EngineError
from repro.streaming.session import SessionResult

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback signature: ``(completed, total)``.
ProgressCallback = Callable[[int, int], None]


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request to an effective pool size.

    ``None`` and ``1`` mean serial execution, ``0`` means one worker per
    available core, any other positive integer is taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise EngineError(f"worker count must be non-negative, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return int(workers)


def _execute_plan(plan: SessionPlan) -> SessionResult:
    """Module-level worker entry point (must be picklable)."""
    return plan.execute()


class BatchExecutor:
    """Executes batches of session plans, serially or on a process pool.

    Parameters
    ----------
    workers:
        ``None``/``1`` → serial in-process execution; ``0`` → one worker per
        core; ``N > 1`` → a pool of ``N`` processes.
    """

    def __init__(self, workers: int | None = None) -> None:
        self._workers = resolve_workers(workers)

    @property
    def workers(self) -> int:
        """The effective worker count this executor runs with."""
        return self._workers

    @property
    def parallel(self) -> bool:
        """Whether this executor uses a process pool."""
        return self._workers > 1

    def execute(
        self,
        plans: Sequence[SessionPlan],
        progress: ProgressCallback | None = None,
    ) -> list[SessionResult]:
        """Simulate every plan and return the results in plan order."""
        return self.map(_execute_plan, plans, progress=progress, label=_describe_plan)

    def map(
        self,
        function: Callable[[T], R],
        items: Sequence[T],
        progress: ProgressCallback | None = None,
        label: Callable[[T], str] | None = None,
    ) -> list[R]:
        """Apply ``function`` to every item, preserving input order.

        On the parallel path both ``function`` and the items must be
        picklable (module-level functions and ``functools.partial`` of them
        qualify).  Failures are wrapped into :class:`EngineError` exactly as
        for :meth:`execute`.
        """
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return self._run_serial(function, items, progress, label)
        return self._run_parallel(function, items, progress, label)

    # -- internal ----------------------------------------------------------

    def _run_serial(
        self,
        function: Callable[[T], R],
        items: list[T],
        progress: ProgressCallback | None,
        label: Callable[[T], str] | None,
    ) -> list[R]:
        results: list[R] = []
        for index, item in enumerate(items):
            try:
                results.append(function(item))
            except EngineError:
                raise
            except Exception as error:
                raise _wrap_failure(index, item, label, error, serial=True) from error
            if progress is not None:
                progress(index + 1, len(items))
        return results

    def _run_parallel(
        self,
        function: Callable[[T], R],
        items: list[T],
        progress: ProgressCallback | None,
        label: Callable[[T], str] | None,
    ) -> list[R]:
        results: list[R | None] = [None] * len(items)
        with ProcessPoolExecutor(max_workers=min(self._workers, len(items))) as pool:
            futures = [pool.submit(function, item) for item in items]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except Exception as error:
                    # Cancel whatever has not started; the context manager
                    # joins the pool so the error never leaves orphans.
                    for pending in futures[index + 1 :]:
                        pending.cancel()
                    if isinstance(error, EngineError):
                        raise
                    raise _wrap_failure(
                        index, items[index], label, error, serial=False
                    ) from error
                if progress is not None:
                    progress(index + 1, len(items))
        return results  # type: ignore[return-value]


def _describe_plan(plan: SessionPlan) -> str:
    return plan.describe()


def _wrap_failure(
    index: int,
    item: object,
    label: Callable[[T], str] | None,
    error: Exception,
    serial: bool,
) -> EngineError:
    name = label(item) if label is not None else f"item {index}"  # type: ignore[arg-type]
    where = "in-process" if serial else "in a worker process"
    return EngineError(
        f"batch item {index} ({name}) failed {where}: "
        f"{type(error).__name__}: {error}"
    )
