"""``--log-format jsonl``: the machine-readable narration contract.

Every stdout line of a jsonl run must parse as JSON with an ``event``
field and the event schema version stamp (``"schema": N`` — the version
handshake coordinators and workers refuse mismatches by), the flag must
work both before and after the sub-command name, and switching renderers
must change narration only — the artifacts written are byte-identical to a
console run's.
"""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.jobs import EVENT_SCHEMA_VERSION


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("jsonl-cli") / "dataset"
    assert (
        main(
            [
                "generate-dataset",
                str(root),
                "--viewers",
                "3",
                "--seed",
                "11",
                "--no-cross-traffic",
            ]
        )
        == 0
    )
    return root


def _jsonl_events(output: str) -> list[dict]:
    lines = output.splitlines()
    assert lines, "jsonl run emitted nothing"
    events = []
    for line in lines:
        event = json.loads(line)  # every line must parse
        assert "event" in event, f"line without an 'event' field: {line}"
        assert event.get("schema") == EVENT_SCHEMA_VERSION, (
            f"line without the event schema stamp: {line}"
        )
        events.append(event)
    return events


def test_every_line_is_a_json_event(dataset_root, tmp_path, capsys):
    library = tmp_path / "lib.json"
    capsys.readouterr()
    assert (
        main(
            [
                "--log-format",
                "jsonl",
                "train",
                str(dataset_root),
                str(library),
                "--train-fraction",
                "0.67",
            ]
        )
        == 0
    )
    events = _jsonl_events(capsys.readouterr().out)
    kinds = [event["event"] for event in events]
    assert "fingerprints" in kinds
    assert kinds[-1] == "result"
    result = events[-1]
    assert result["job"] == "train"
    artifact = result["artifacts"][0]
    assert artifact["name"] == "fingerprint-library"
    assert len(artifact["fingerprint"]) == 64  # sha256 hex of the written file


def test_flag_works_after_the_subcommand_name(dataset_root, tmp_path, capsys):
    capsys.readouterr()
    assert (
        main(
            [
                "train",
                str(dataset_root),
                str(tmp_path / "lib.json"),
                "--log-format",
                "jsonl",
            ]
        )
        == 0
    )
    _jsonl_events(capsys.readouterr().out)


def test_renderer_choice_never_changes_artifacts(dataset_root, tmp_path, capsys):
    console_lib = tmp_path / "console.json"
    jsonl_lib = tmp_path / "jsonl.json"
    assert main(["train", str(dataset_root), str(console_lib)]) == 0
    console_output = capsys.readouterr().out
    assert (
        main(["--log-format", "jsonl", "train", str(dataset_root), str(jsonl_lib)])
        == 0
    )
    jsonl_output = capsys.readouterr().out
    # Same bytes on disk; entirely different narration on stdout.
    assert console_lib.read_bytes() == jsonl_lib.read_bytes()
    assert "Learned fingerprints" in console_output
    assert "Learned fingerprints" not in jsonl_output
    _jsonl_events(jsonl_output)


def test_default_console_run_emits_no_json_events(dataset_root, tmp_path, capsys):
    assert main(["train", str(dataset_root), str(tmp_path / "lib.json")]) == 0
    output = capsys.readouterr().out
    assert not any(line.startswith('{"event"') for line in output.splitlines())
