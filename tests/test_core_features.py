"""Tests for client-record feature extraction (the side-channel observable)."""

from __future__ import annotations

import pytest

from repro.core.features import (
    LABEL_OTHER,
    LABEL_TYPE1,
    LABEL_TYPE2,
    ClientRecord,
    extract_client_records,
    labelled_lengths,
    record_length_series,
    select_streaming_flow,
)
from repro.exceptions import AttackError
from repro.net.capture import CapturedTrace


class TestClientRecord:
    def test_properties(self):
        record = ClientRecord(timestamp=1.0, wire_length=2212, content_type=23, label=LABEL_TYPE1)
        assert record.is_application_data
        assert record.payload_length == 2207

    def test_rejects_tiny_record(self):
        with pytest.raises(AttackError):
            ClientRecord(timestamp=1.0, wire_length=3, content_type=23)


class TestExtraction:
    def test_extracts_expected_state_reports(self, minimal_session):
        records = extract_client_records(
            minimal_session.trace, server_ip=minimal_session.trace.server_ip
        )
        labels = [record.label for record in records]
        assert labels.count(LABEL_TYPE1) == 2
        assert labels.count(LABEL_TYPE2) == 1
        assert labels.count(LABEL_OTHER) > 10

    def test_records_are_time_ordered(self, minimal_session):
        records = extract_client_records(
            minimal_session.trace, server_ip=minimal_session.trace.server_ip
        )
        timestamps = [record.timestamp for record in records]
        assert timestamps == sorted(timestamps)

    def test_handshake_records_excluded_by_default(self, minimal_session):
        records = extract_client_records(
            minimal_session.trace, server_ip=minimal_session.trace.server_ip
        )
        assert all(record.is_application_data for record in records)

    def test_handshake_records_present_when_requested(self, minimal_session):
        records = extract_client_records(
            minimal_session.trace,
            server_ip=minimal_session.trace.server_ip,
            application_data_only=False,
        )
        assert any(not record.is_application_data for record in records)

    def test_state_report_lengths_fall_in_figure2_bands(self, minimal_session):
        records = extract_client_records(
            minimal_session.trace, server_ip=minimal_session.trace.server_ip
        )
        type1_lengths = [r.wire_length for r in records if r.label == LABEL_TYPE1]
        type2_lengths = [r.wire_length for r in records if r.label == LABEL_TYPE2]
        assert all(2211 <= length <= 2213 for length in type1_lengths)
        assert all(2992 <= length <= 3017 for length in type2_lengths)

    def test_flow_selection_by_largest_when_server_unknown(self, ubuntu_session):
        records_known = extract_client_records(
            ubuntu_session.trace, server_ip=ubuntu_session.trace.server_ip
        )
        records_heuristic = extract_client_records(ubuntu_session.trace, server_ip=None)
        assert record_length_series(records_known) == record_length_series(records_heuristic)

    def test_unknown_server_ip_rejected(self, minimal_session):
        with pytest.raises(AttackError):
            extract_client_records(minimal_session.trace, server_ip="203.0.113.99")

    def test_pcap_round_trip_preserves_lengths_but_not_labels(self, tmp_path, minimal_session):
        path = tmp_path / "capture.pcap"
        minimal_session.trace.to_pcap(path)
        restored = CapturedTrace.from_pcap(
            path,
            client_ip=minimal_session.trace.client_ip,
            server_ip=minimal_session.trace.server_ip,
        )
        original = extract_client_records(
            minimal_session.trace, server_ip=minimal_session.trace.server_ip
        )
        recovered = extract_client_records(restored, server_ip=restored.server_ip)
        assert record_length_series(recovered) == record_length_series(original)
        assert all(record.label is None for record in recovered)

    def test_labelled_lengths_requires_labels(self, minimal_session, tmp_path):
        records = extract_client_records(
            minimal_session.trace, server_ip=minimal_session.trace.server_ip
        )
        lengths, labels = labelled_lengths(records)
        assert len(lengths) == len(labels) == len(records)
        path = tmp_path / "capture.pcap"
        minimal_session.trace.to_pcap(path)
        restored = CapturedTrace.from_pcap(
            path,
            client_ip=minimal_session.trace.client_ip,
            server_ip=minimal_session.trace.server_ip,
        )
        unlabelled = extract_client_records(restored, server_ip=restored.server_ip)
        with pytest.raises(AttackError):
            labelled_lengths(unlabelled)

    def test_select_streaming_flow_ignores_cross_traffic(self, ubuntu_session):
        flow = select_streaming_flow(ubuntu_session.trace)
        assert flow.five_tuple.server.ip == ubuntu_session.trace.server_ip
