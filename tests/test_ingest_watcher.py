"""Tests for the capture-ingest front end's watcher, queue and results log."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import IngestError
from repro.ingest.log import CaptureVerdict, ResultsLog, capture_fingerprint
from repro.ingest.watcher import INPROGRESS_SUFFIX, CaptureWatcher, IngestQueue


def _drop(directory, name, payload=b"pcap-bytes"):
    path = directory / name
    path.write_bytes(payload)
    return path


def _backdate(path):
    # Push the mtime far into the past so the stable-stat fallback's quiet
    # window (mtime age) is satisfied and only scan-to-scan stability gates.
    os.utime(path, ns=(0, 0))


class TestCaptureWatcher:
    def test_requires_an_existing_directory(self, tmp_path):
        with pytest.raises(IngestError, match="does not exist"):
            CaptureWatcher(tmp_path / "missing")

    def test_stable_stat_fallback_needs_two_scans(self, tmp_path):
        watcher = CaptureWatcher(tmp_path)
        _backdate(_drop(tmp_path, "a.pcap"))
        # First sighting records the stat; the capture is not yet trusted.
        assert watcher.scan() == []
        # Unchanged across a second scan: finished.
        assert [p.name for p in watcher.scan()] == ["a.pcap"]
        # Never re-reported.
        assert watcher.scan() == []

    def test_growing_capture_is_held_back(self, tmp_path):
        watcher = CaptureWatcher(tmp_path)
        path = _drop(tmp_path, "a.pcap", b"first")
        assert watcher.scan() == []
        # The writer appended between scans: the stat changed, so the
        # stability clock restarts.
        with open(path, "ab") as handle:
            handle.write(b"more")
        os.utime(path, ns=(1, 2))  # force a distinct mtime_ns deterministically
        assert watcher.scan() == []
        assert [p.name for p in watcher.scan()] == ["a.pcap"]

    def test_stable_but_recent_capture_waits_for_the_quiet_window(self, tmp_path):
        """The tcpdump race, pinned: a burst writer flushes, looks stable
        across two fast polls, then writes again — matching stats alone must
        not trigger the attack."""
        clock = {"now": 1000.0}
        watcher = CaptureWatcher(
            tmp_path, quiet_seconds=1.0, clock=lambda: clock["now"]
        )
        path = _drop(tmp_path, "a.pcap", b"burst-one")
        os.utime(path, ns=(int(999.95e9), int(999.95e9)))  # 0.05s old
        # Two scans see identical stats, but the file is too young: held.
        assert watcher.scan() == []
        assert watcher.scan() == []
        # The writer's next burst lands — early trust would have truncated it.
        with open(path, "ab") as handle:
            handle.write(b"burst-two")
        clock["now"] = 1000.5
        os.utime(path, ns=(int(1000.4e9), int(1000.4e9)))
        assert watcher.scan() == []  # stat changed: stability restarts
        clock["now"] = 1000.6
        assert watcher.scan() == []  # stable again, but still too young
        clock["now"] = 1002.0  # the capture has now been quiet for 1.6s
        assert [p.name for p in watcher.scan()] == ["a.pcap"]

    def test_quiet_window_zero_restores_two_scan_behaviour(self, tmp_path):
        watcher = CaptureWatcher(tmp_path, quiet_seconds=0.0)
        _drop(tmp_path, "a.pcap")  # fresh mtime, no backdating
        assert watcher.scan() == []
        assert [p.name for p in watcher.scan()] == ["a.pcap"]

    def test_recursive_watching_keys_by_relative_path(self, tmp_path):
        (tmp_path / "box-a").mkdir()
        (tmp_path / "box-b").mkdir()
        _backdate(_drop(tmp_path / "box-a", "x.pcap", b"from-a"))
        _backdate(_drop(tmp_path / "box-b", "x.pcap", b"from-b"))
        _backdate(_drop(tmp_path, "top.pcap"))
        flat = CaptureWatcher(tmp_path)
        assert [p.name for p in flat.scan(assume_quiescent=True)] == ["top.pcap"]
        deep = CaptureWatcher(tmp_path, recursive=True)
        found = deep.scan(assume_quiescent=True)
        # Same basename under two subdirectories: both reported, exactly once.
        assert [p.relative_to(tmp_path).as_posix() for p in found] == [
            "box-a/x.pcap",
            "box-b/x.pcap",
            "top.pcap",
        ]
        assert deep.scan(assume_quiescent=True) == []

    def test_recursive_marker_blocks_its_own_subdirectory_capture(self, tmp_path):
        nested = tmp_path / "box-a"
        nested.mkdir()
        _backdate(_drop(nested, "x.pcap"))
        _drop(nested, "x.pcap" + INPROGRESS_SUFFIX)
        watcher = CaptureWatcher(tmp_path, recursive=True)
        assert watcher.scan(assume_quiescent=True) == []
        (nested / ("x.pcap" + INPROGRESS_SUFFIX)).unlink()
        assert [p.name for p in watcher.scan(assume_quiescent=True)] == ["x.pcap"]

    def test_inprogress_marker_blocks_then_rename_is_trusted_immediately(
        self, tmp_path
    ):
        watcher = CaptureWatcher(tmp_path)
        marker = _drop(tmp_path, "a.pcap" + INPROGRESS_SUFFIX)
        assert watcher.scan() == []
        # The cooperative writer finishes: rename to the final name.  No
        # stability wait — the rename is the completion signal.
        os.replace(marker, tmp_path / "a.pcap")
        assert [p.name for p in watcher.scan()] == ["a.pcap"]

    def test_marker_alongside_final_name_blocks_the_capture(self, tmp_path):
        watcher = CaptureWatcher(tmp_path)
        _drop(tmp_path, "a.pcap")
        _drop(tmp_path, "a.pcap" + INPROGRESS_SUFFIX)
        assert watcher.scan() == []
        assert watcher.scan() == []  # still marked: never trusted
        (tmp_path / ("a.pcap" + INPROGRESS_SUFFIX)).unlink()
        assert [p.name for p in watcher.scan()] == ["a.pcap"]

    def test_quiescent_scan_trusts_unmarked_captures_immediately(self, tmp_path):
        watcher = CaptureWatcher(tmp_path)
        _drop(tmp_path, "b.pcap")
        _drop(tmp_path, "a.pcap")
        _drop(tmp_path, "c.pcap" + INPROGRESS_SUFFIX)
        # Name-sorted, marker-protected capture excluded.
        assert [p.name for p in watcher.scan(assume_quiescent=True)] == [
            "a.pcap",
            "b.pcap",
        ]

    def test_non_pcap_files_are_ignored(self, tmp_path):
        watcher = CaptureWatcher(tmp_path)
        _drop(tmp_path, "results.jsonl")
        _drop(tmp_path, "notes.txt")
        assert watcher.scan(assume_quiescent=True) == []


class TestIngestQueue:
    def test_offer_dedupes_and_orders(self, tmp_path):
        queue = IngestQueue()
        first = _drop(tmp_path, "b.pcap")
        second = _drop(tmp_path, "a.pcap")
        accepted = queue.offer([first, second])
        # Name-sorted within one batch.
        assert [p.name for p in accepted] == ["a.pcap", "b.pcap"]
        # Re-offering is a no-op, even after draining.
        assert queue.offer([first]) == []
        assert [p.name for p in queue.drain()] == ["a.pcap", "b.pcap"]
        assert queue.offer([second]) == []
        assert queue.drain() == []

    def test_arrival_order_is_preserved_across_batches(self, tmp_path):
        queue = IngestQueue()
        late = _drop(tmp_path, "a-late.pcap")
        early = _drop(tmp_path, "z-early.pcap")
        queue.offer([early])
        queue.offer([late])
        # First-seen order wins over name order across batches.
        assert [p.name for p in queue.drain()] == ["z-early.pcap", "a-late.pcap"]

    def test_len_counts_pending_only(self, tmp_path):
        queue = IngestQueue()
        queue.offer([_drop(tmp_path, "a.pcap")])
        assert len(queue) == 1
        queue.drain()
        assert len(queue) == 0


def _verdict(capture="v.pcap", fingerprint="f" * 64, truth=(True, False)):
    return CaptureVerdict(
        capture=capture,
        fingerprint=fingerprint,
        condition_key="linux/firefox",
        client_ip="192.168.1.23",
        server_ip=None,
        pattern=(True, False),
        truth=truth,
    )


class TestCaptureVerdict:
    def test_record_roundtrip(self):
        verdict = _verdict()
        assert CaptureVerdict.from_record(verdict.as_record()) == verdict

    def test_scoring_properties(self):
        verdict = _verdict(truth=(True, True, False))
        assert verdict.choice_count == 2
        assert verdict.question_count == 3
        # Question 1 correct, question 2 wrong, question 3 not recovered.
        assert verdict.correct_questions == 1

    def test_no_truth_scores_zero_questions(self):
        verdict = _verdict(truth=None)
        assert verdict.question_count == 0
        assert verdict.correct_questions == 0

    def test_from_record_rejects_missing_fields(self):
        record = _verdict().as_record()
        del record["fingerprint"]
        with pytest.raises(IngestError, match="fingerprint"):
            CaptureVerdict.from_record(record)

    def test_from_record_rejects_unknown_version(self):
        record = _verdict().as_record()
        record["version"] = 99
        with pytest.raises(IngestError, match="version"):
            CaptureVerdict.from_record(record)


class TestResultsLog:
    def test_missing_log_loads_empty(self, tmp_path):
        assert ResultsLog(tmp_path / "results.jsonl").load() == []

    def test_append_then_load_roundtrips(self, tmp_path):
        log = ResultsLog(tmp_path / "results.jsonl")
        first = _verdict("a.pcap", "a" * 64)
        second = _verdict("b.pcap", "b" * 64)
        log.append(first)
        log.append(second)
        assert log.load() == [first, second]

    def test_lines_are_deterministic(self, tmp_path):
        log_a = ResultsLog(tmp_path / "a.jsonl")
        log_b = ResultsLog(tmp_path / "b.jsonl")
        log_a.append(_verdict())
        log_b.append(_verdict())
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()

    def test_partial_trailing_line_is_repaired(self, tmp_path):
        path = tmp_path / "results.jsonl"
        log = ResultsLog(path)
        keep = _verdict("a.pcap", "a" * 64)
        lost = _verdict("b.pcap", "b" * 64)
        log.append(keep)
        intact = path.read_bytes()
        log.append(lost)
        # A crash mid-append persists only a prefix of the last line.
        with open(path, "rb+") as handle:
            handle.truncate(len(intact) + 17)
        assert log.load() == [keep]
        # The debris is gone from disk; the log is append-ready again.
        assert path.read_bytes() == intact

    def test_partial_line_raises_without_repair(self, tmp_path):
        path = tmp_path / "results.jsonl"
        log = ResultsLog(path)
        log.append(_verdict())
        with open(path, "ab") as handle:
            handle.write(b'{"version": 1, "trunc')
        with pytest.raises(IngestError, match="partial line"):
            log.load(repair=False)

    def test_mid_file_corruption_is_not_silently_dropped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        log = ResultsLog(path)
        log.append(_verdict("a.pcap", "a" * 64))
        with open(path, "ab") as handle:
            handle.write(b"garbage line\n")
        log.append(_verdict("b.pcap", "b" * 64))
        with pytest.raises(IngestError, match="corrupt"):
            log.load()

    def test_terminated_garbage_tail_is_corruption_not_debris(self, tmp_path):
        # Each append persists as a prefix of one write whose *last* byte is
        # the terminator, so a terminated line that does not parse cannot be
        # crash debris — silently truncating it would delete a real verdict.
        path = tmp_path / "results.jsonl"
        log = ResultsLog(path)
        log.append(_verdict())
        with open(path, "ab") as handle:
            handle.write(b'{"not": "a verdict"}\n')
        with pytest.raises(IngestError, match="corrupt"):
            log.load()


class TestCaptureFingerprint:
    def test_fingerprint_is_content_addressed(self, tmp_path):
        first = _drop(tmp_path, "one.pcap", b"same bytes")
        renamed = _drop(tmp_path, "two.pcap", b"same bytes")
        other = _drop(tmp_path, "three.pcap", b"different bytes")
        assert capture_fingerprint(first) == capture_fingerprint(renamed)
        assert capture_fingerprint(first) != capture_fingerprint(other)
        # Stable hex digest (what the results log stores).
        assert json.dumps(capture_fingerprint(first))  # serialisable string
        assert len(capture_fingerprint(first)) == 64

    def test_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(IngestError, match="cannot fingerprint"):
            capture_fingerprint(tmp_path / "missing.pcap")


class TestAtomicPcapPublication:
    """``CapturedTrace.to_pcap_atomic`` writes the convention the watcher trusts."""

    def test_bytes_match_plain_to_pcap_and_no_marker_remains(
        self, tmp_path, ubuntu_session
    ):
        plain = tmp_path / "plain.pcap"
        atomic = tmp_path / "atomic.pcap"
        written_plain = ubuntu_session.trace.to_pcap(plain)
        written_atomic = ubuntu_session.trace.to_pcap_atomic(atomic)
        assert written_atomic == written_plain
        assert atomic.read_bytes() == plain.read_bytes()
        assert not (tmp_path / ("atomic.pcap" + INPROGRESS_SUFFIX)).exists()

    def test_watcher_trusts_an_atomically_published_capture(
        self, tmp_path, ubuntu_session
    ):
        drop = tmp_path / "drop"
        drop.mkdir()
        watcher = CaptureWatcher(drop)
        assert watcher.scan() == []
        ubuntu_session.trace.to_pcap_atomic(drop / "session.pcap")
        # No marker was ever observed mid-write here, so the stable-stat
        # fallback applies: two scans (and the quiet window), then trusted.
        os.utime(drop / "session.pcap", ns=(0, 0))
        assert watcher.scan() == []
        assert [p.name for p in watcher.scan()] == ["session.pcap"]
