"""Tests for network-condition models and the capture sink."""

from __future__ import annotations

import pytest

from repro.client.profiles import OperationalCondition, enumerate_conditions
from repro.exceptions import PacketError
from repro.net.capture import CaptureSink, CapturedTrace
from repro.net.conditions import conditions_for
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.packet import Direction, Packet
from repro.net.tcp import TCPSender
from repro.utils.rng import RandomSource


@pytest.fixture()
def wired_noon_conditions():
    return conditions_for(OperationalCondition("linux", "desktop", "firefox", "wired", "noon"))


@pytest.fixture()
def five_tuple() -> FiveTuple:
    return FiveTuple(
        client=Endpoint("192.168.1.23", 51742), server=Endpoint("198.51.100.7", 443)
    )


class TestNetworkConditions:
    def test_every_condition_maps_to_network_parameters(self):
        for condition in enumerate_conditions():
            network = conditions_for(condition)
            assert network.base_rtt_seconds > 0
            assert network.downlink.bits_per_second > 0

    def test_wireless_has_higher_rtt_and_loss(self):
        wired = conditions_for(OperationalCondition("linux", "desktop", "firefox", "wired", "noon"))
        wireless = conditions_for(
            OperationalCondition("linux", "desktop", "firefox", "wireless", "noon")
        )
        assert wireless.base_rtt_seconds > wired.base_rtt_seconds
        assert wireless.loss_probability > wired.loss_probability

    def test_night_is_more_congested_than_morning(self):
        morning = conditions_for(
            OperationalCondition("linux", "desktop", "firefox", "wired", "morning")
        )
        night = conditions_for(OperationalCondition("linux", "desktop", "firefox", "wired", "night"))
        assert night.downlink.bits_per_second < morning.downlink.bits_per_second
        assert night.cross_traffic_flow_rate_per_minute > morning.cross_traffic_flow_rate_per_minute

    def test_one_way_delay_positive(self, wired_noon_conditions):
        rng = RandomSource(1)
        for _ in range(50):
            assert wired_noon_conditions.one_way_delay(rng) > 0

    def test_serialization_delay_direction(self, wired_noon_conditions):
        down = wired_noon_conditions.serialization_delay(10_000, uplink=False)
        up = wired_noon_conditions.serialization_delay(10_000, uplink=True)
        assert up > down  # uplinks are slower


class TestCaptureSink:
    def test_observe_and_trace_sorted(self, wired_noon_conditions, five_tuple):
        sink = CaptureSink(wired_noon_conditions, RandomSource(2))
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER)
        sink.observe_all(sender.send(b"b" * 10, 2.0))
        sink.observe_all(sender.send(b"a" * 10, 1.0))
        trace = sink.trace()
        timestamps = [p.timestamp for p in trace.packets]
        assert timestamps == sorted(timestamps)

    def test_retransmissions_appear_under_loss(self, five_tuple):
        lossy = conditions_for(
            OperationalCondition("linux", "desktop", "firefox", "wireless", "night")
        )
        # Force a high-loss variant for the test by reusing the model directly.
        sink = CaptureSink(lossy, RandomSource(3))
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER)
        for index in range(500):
            sink.observe_all(sender.send(b"x" * 100, float(index)))
        trace = sink.trace()
        assert any(p.is_retransmission for p in trace.packets)

    def test_cross_traffic_uses_other_five_tuples(self, wired_noon_conditions, five_tuple):
        sink = CaptureSink(wired_noon_conditions, RandomSource(4))
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER)
        sink.observe_all(sender.send(b"x" * 100, 0.0))
        added = sink.add_cross_traffic(session_duration_seconds=600.0)
        trace = sink.trace()
        if added:
            other_flows = {
                p.five_tuple.key for p in trace.packets if p.five_tuple != five_tuple
            }
            assert other_flows
        assert trace.packet_count == len(sink)

    def test_empty_capture_rejected(self, wired_noon_conditions):
        sink = CaptureSink(wired_noon_conditions, RandomSource(5))
        with pytest.raises(PacketError):
            sink.trace()


class TestCapturedTrace:
    def test_round_trip_via_pcap(self, tmp_path, minimal_session):
        trace = minimal_session.trace
        path = tmp_path / "session.pcap"
        written = trace.to_pcap(path)
        assert written == trace.packet_count
        restored = CapturedTrace.from_pcap(
            path, client_ip=trace.client_ip, server_ip=trace.server_ip
        )
        assert restored.packet_count == trace.packet_count
        assert len(restored.client_packets()) == len(trace.client_packets())
        # Annotations (ground truth) must not survive the round trip.
        assert all(not p.annotations for p in restored.packets)

    def test_trace_statistics(self, minimal_session):
        trace = minimal_session.trace
        assert trace.duration_seconds > 0
        assert trace.total_bytes() > 0
        assert len(trace.server_packets()) + len(trace.client_packets()) == trace.packet_count

    def test_flow_table_contains_streaming_flow(self, minimal_session):
        table = minimal_session.trace.flow_table()
        largest = table.largest_flow()
        assert largest.five_tuple.server.ip == minimal_session.trace.server_ip
