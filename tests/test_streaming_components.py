"""Tests for the streaming building blocks: buffer, ABR, prefetcher, server, events."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamingError
from repro.media.manifest import build_manifest
from repro.narrative.bandersnatch import build_minimal_interactive_script
from repro.streaming.abr import AdaptiveBitrateController
from repro.streaming.buffer import PlaybackBuffer
from repro.streaming.events import EventKind, EventLog
from repro.streaming.prefetch import Prefetcher
from repro.streaming.server import StreamingServer
from repro.media.encoding import default_ladder


class TestPlaybackBuffer:
    def test_add_and_play(self):
        buffer = PlaybackBuffer(target_seconds=10, max_seconds=30)
        buffer.add(12.0)
        stall = buffer.play(4.0)
        assert stall == 0.0
        assert buffer.level_seconds == pytest.approx(8.0)
        assert buffer.deficit_seconds() == pytest.approx(2.0)

    def test_stall_recorded_when_buffer_empty(self):
        buffer = PlaybackBuffer()
        stall = buffer.play(3.0)
        assert stall == pytest.approx(3.0)
        assert buffer.rebuffer_events == 1
        assert buffer.total_rebuffer_seconds == pytest.approx(3.0)

    def test_cap_enforced(self):
        buffer = PlaybackBuffer(target_seconds=10, max_seconds=20)
        buffer.add(50.0)
        assert buffer.level_seconds == pytest.approx(20.0)
        assert buffer.is_full
        assert buffer.headroom_seconds() == pytest.approx(0.0)

    def test_drain(self):
        buffer = PlaybackBuffer()
        buffer.add(7.0)
        assert buffer.drain() == pytest.approx(7.0)
        assert buffer.level_seconds == 0.0

    def test_invalid_configuration(self):
        with pytest.raises(StreamingError):
            PlaybackBuffer(target_seconds=0)
        with pytest.raises(StreamingError):
            PlaybackBuffer(target_seconds=30, max_seconds=10)
        with pytest.raises(StreamingError):
            PlaybackBuffer().add(-1.0)


class TestABR:
    def test_starts_at_lowest_quality(self):
        abr = AdaptiveBitrateController(default_ladder())
        assert abr.select_profile(PlaybackBuffer()).name == "ld_240p"

    def test_ramps_up_with_throughput(self):
        abr = AdaptiveBitrateController(default_ladder())
        buffer = PlaybackBuffer()
        buffer.add(30.0)
        for _ in range(10):
            abr.observe_download(5_000_000, 1.0)  # 40 Mbps
        assert abr.select_profile(buffer).name in ("hd_1080p", "uhd_2160p")

    def test_low_buffer_drops_a_rung(self):
        abr = AdaptiveBitrateController(default_ladder(), low_buffer_seconds=8.0)
        for _ in range(10):
            abr.observe_download(5_000_000, 1.0)
        high = abr.select_profile(_full_buffer())
        low = abr.select_profile(PlaybackBuffer())
        assert default_ladder().index_of(low) == default_ladder().index_of(high) - 1

    def test_observe_download_validation(self):
        abr = AdaptiveBitrateController(default_ladder())
        with pytest.raises(StreamingError):
            abr.observe_download(0, 1.0)
        with pytest.raises(StreamingError):
            abr.observe_download(100, 0.0)

    def test_throughput_estimate_exposed(self):
        abr = AdaptiveBitrateController(default_ladder())
        assert abr.throughput_estimate is None
        abr.observe_download(1_000_000, 1.0)
        assert abr.throughput_estimate.bits_per_second == pytest.approx(8_000_000)


def _full_buffer() -> PlaybackBuffer:
    buffer = PlaybackBuffer()
    buffer.add(60.0)
    return buffer


class TestPrefetcher:
    @pytest.fixture()
    def chunk_map(self):
        graph = build_minimal_interactive_script()
        manifest = build_manifest(graph, content_seed=1)
        return manifest.segment_chunks("S1", "hd_720p")

    def test_plan_respects_window(self, chunk_map):
        prefetcher = Prefetcher(max_prefetch_seconds=10.0)
        plan = prefetcher.plan("Q1", chunk_map)
        assert 0 < len(plan.chunks) <= 3
        assert plan.segment_id == "S1"

    def test_fetchable_during_is_bounded_by_decision_delay(self, chunk_map):
        prefetcher = Prefetcher(max_prefetch_seconds=20.0)
        plan = prefetcher.plan("Q1", chunk_map)
        fetched = prefetcher.fetchable_during(plan, decision_delay_seconds=2.0, chunk_fetch_seconds=0.9)
        assert len(fetched) == 2

    def test_discard_reports_wasted_bytes(self, chunk_map):
        prefetcher = Prefetcher()
        plan = prefetcher.plan("Q1", chunk_map)
        fetched = prefetcher.fetchable_during(plan, 5.0, 1.0)
        prefetcher.mark_fetched(plan, fetched)
        wasted = prefetcher.discard(plan)
        assert wasted == sum(chunk.size_bytes for chunk in fetched)
        assert plan.discarded

    def test_invalid_prefetch_window(self):
        with pytest.raises(StreamingError):
            Prefetcher(max_prefetch_seconds=0)


class TestStreamingServer:
    def test_serves_chunks_and_counts_bytes(self, minimal_graph):
        manifest = build_manifest(minimal_graph, content_seed=2)
        server = StreamingServer(manifest)
        response = server.serve_chunk("S0", 0, "hd_720p")
        assert response.total_bytes > response.payload_bytes
        assert server.chunks_served == 1
        assert server.bytes_served == response.total_bytes

    def test_unknown_chunk_rejected(self, minimal_graph):
        manifest = build_manifest(minimal_graph, content_seed=2)
        server = StreamingServer(manifest)
        with pytest.raises(StreamingError):
            server.serve_chunk("S0", 10_000, "hd_720p")

    def test_state_ack_is_small(self, minimal_graph):
        server = StreamingServer(build_manifest(minimal_graph, content_seed=2))
        assert 0 < server.acknowledge_state_report() < 1000


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(0.0, EventKind.SESSION_STARTED, session_id="x")
        log.record(1.0, EventKind.QUESTION_SHOWN, question_id="Q1")
        log.record(2.0, EventKind.TYPE1_SENT, question_id="Q1")
        assert len(log) == 3
        assert log.count(EventKind.TYPE1_SENT) == 1
        assert log.kinds_in_order()[0] is EventKind.SESSION_STARTED
        assert log.of_kind(EventKind.QUESTION_SHOWN)[0].details["question_id"] == "Q1"

    def test_negative_timestamp_rejected(self):
        with pytest.raises(StreamingError):
            EventLog().record(-1.0, EventKind.SESSION_STARTED)
