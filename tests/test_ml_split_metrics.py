"""Tests for the ML splitting utilities and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MLError
from repro.ml.metrics import (
    ConfusionMatrix,
    accuracy_score,
    classification_report,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.split import kfold_indices, train_test_split


class TestTrainTestSplit:
    def test_split_is_disjoint_and_complete(self):
        labels = ["a"] * 10 + ["b"] * 10
        split = train_test_split(labels, test_fraction=0.3, seed=1)
        train = set(split.train_indices.tolist())
        test = set(split.test_indices.tolist())
        assert not train & test
        assert train | test == set(range(20))

    def test_split_is_stratified(self):
        labels = ["a"] * 10 + ["b"] * 10
        split = train_test_split(labels, test_fraction=0.3, seed=1)
        test_labels = [labels[i] for i in split.test_indices]
        assert test_labels.count("a") == 3
        assert test_labels.count("b") == 3

    def test_every_class_keeps_a_training_sample(self):
        labels = ["a", "a", "b", "b", "c"]
        split = train_test_split(labels, test_fraction=0.5, seed=2)
        train_labels = {labels[i] for i in split.train_indices}
        assert train_labels == {"a", "b", "c"}

    def test_invalid_fraction_rejected(self):
        with pytest.raises(MLError):
            train_test_split(["a", "b"], test_fraction=1.5)

    def test_deterministic(self):
        labels = ["a", "b"] * 20
        first = train_test_split(labels, seed=3)
        second = train_test_split(labels, seed=3)
        assert first.train_indices.tolist() == second.train_indices.tolist()


class TestKFold:
    def test_folds_partition_samples(self):
        folds = kfold_indices(17, folds=4, seed=0)
        assert len(folds) == 4
        all_test = sorted(i for _, test in folds for i in test.tolist())
        assert all_test == list(range(17))

    def test_train_and_test_disjoint(self):
        for train, test in kfold_indices(20, folds=5):
            assert not set(train.tolist()) & set(test.tolist())

    def test_too_few_samples_rejected(self):
        with pytest.raises(MLError):
            kfold_indices(2, folds=5)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(["a", "b", "a"], ["a", "b", "b"]) == pytest.approx(2 / 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(MLError):
            accuracy_score(["a"], ["a", "b"])

    def test_precision_recall_f1(self):
        truth = ["p", "p", "n", "n", "p"]
        predicted = ["p", "n", "p", "n", "p"]
        assert precision_score(truth, predicted, "p") == pytest.approx(2 / 3)
        assert recall_score(truth, predicted, "p") == pytest.approx(2 / 3)
        assert f1_score(truth, predicted, "p") == pytest.approx(2 / 3)

    def test_precision_with_no_positive_predictions(self):
        assert precision_score(["p", "n"], ["n", "n"], "p") == 1.0

    def test_recall_with_no_positive_truth(self):
        assert recall_score(["n", "n"], ["p", "n"], "p") == 1.0

    def test_confusion_matrix_counts(self):
        truth = ["a", "a", "b", "b", "b"]
        predicted = ["a", "b", "b", "b", "a"]
        matrix = ConfusionMatrix.from_predictions(truth, predicted)
        assert matrix.count("a", "a") == 1
        assert matrix.count("a", "b") == 1
        assert matrix.count("b", "a") == 1
        assert matrix.count("b", "b") == 2
        assert matrix.total == 5
        assert matrix.accuracy == pytest.approx(3 / 5)

    def test_confusion_matrix_rows(self):
        matrix = ConfusionMatrix.from_predictions(["x", "y"], ["x", "x"])
        rows = matrix.as_rows()
        assert len(rows) == 2
        assert rows[0]["true"] == "x"

    def test_classification_report_structure(self):
        report = classification_report(["a", "b", "a"], ["a", "b", "b"])
        assert set(report) == {"a", "b", "overall"}
        assert report["overall"]["accuracy"] == pytest.approx(2 / 3)
        assert report["a"]["support"] == 2
