"""Tests for operational conditions and client profiles (Figure 2 calibration)."""

from __future__ import annotations

import pytest

from repro.client.profiles import (
    ClientProfile,
    OperationalCondition,
    enumerate_conditions,
    figure2_conditions,
    profile_for,
)
from repro.exceptions import ConfigurationError


class TestOperationalCondition:
    def test_valid_condition(self):
        condition = OperationalCondition("linux", "desktop", "firefox", "wired", "noon")
        assert condition.key == "linux/desktop/firefox/wired/noon"
        assert condition.fingerprint_key == "linux/firefox"

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigurationError):
            OperationalCondition("beos", "desktop", "firefox", "wired", "noon")

    def test_round_trip_dict(self):
        condition = OperationalCondition("mac", "laptop", "chrome", "wireless", "night")
        assert OperationalCondition.from_dict(condition.as_dict()) == condition

    def test_enumerate_covers_full_grid(self):
        conditions = enumerate_conditions()
        assert len(conditions) == 3 * 2 * 2 * 2 * 3
        assert len({c.key for c in conditions}) == len(conditions)

    def test_figure2_conditions(self):
        ubuntu, windows = figure2_conditions()
        assert ubuntu.operating_system == "linux"
        assert windows.operating_system == "windows"
        assert ubuntu.browser == windows.browser == "firefox"


class TestClientProfile:
    def test_every_condition_has_a_profile(self):
        for condition in enumerate_conditions():
            profile = profile_for(condition)
            assert profile.type1_payload_bytes > 0
            assert profile.type2_payload_bytes > profile.type1_payload_bytes

    def test_figure2_ubuntu_calibration(self):
        ubuntu, _ = figure2_conditions()
        profile = profile_for(ubuntu)
        # Paper: type-1 records fall in 2211-2213, type-2 in 2992-3017.
        assert 2211 <= profile.expected_type1_record_length <= 2213
        assert 2992 <= profile.expected_type2_record_length <= 3017

    def test_figure2_windows_calibration(self):
        _, windows = figure2_conditions()
        profile = profile_for(windows)
        # Paper: type-1 records fall in 2341-2343, type-2 in 3118-3147.
        assert 2341 <= profile.expected_type1_record_length <= 2343
        assert 3118 <= profile.expected_type2_record_length <= 3147

    def test_night_conditions_are_noisier(self):
        base = OperationalCondition("linux", "desktop", "firefox", "wired", "morning")
        night = OperationalCondition("linux", "desktop", "firefox", "wired", "night")
        assert (
            profile_for(night).band_collision_probability
            > profile_for(base).band_collision_probability
        )
        assert profile_for(night).state_loss_probability >= profile_for(base).state_loss_probability

    def test_wireless_adds_collision_noise(self):
        wired = OperationalCondition("linux", "desktop", "firefox", "wired", "noon")
        wireless = OperationalCondition("linux", "desktop", "firefox", "wireless", "noon")
        assert (
            profile_for(wireless).band_collision_probability
            > profile_for(wired).band_collision_probability
        )

    def test_record_length_bands_differ_across_environments(self):
        seen = set()
        for condition in enumerate_conditions():
            profile = profile_for(condition)
            seen.add((profile.type1_payload_bytes, profile.type2_payload_bytes))
        # One distinct calibration per (OS, browser) pair.
        assert len(seen) == 6

    def test_invalid_profile_rejected(self):
        condition = figure2_conditions()[0]
        with pytest.raises(ConfigurationError):
            ClientProfile(
                condition=condition,
                type1_payload_bytes=0,
                type1_payload_jitter=1,
                type2_payload_bytes=100,
                type2_payload_jitter=1,
            )

    def test_bad_probability_rejected(self):
        condition = figure2_conditions()[0]
        with pytest.raises(ConfigurationError):
            ClientProfile(
                condition=condition,
                type1_payload_bytes=100,
                type1_payload_jitter=1,
                type2_payload_bytes=200,
                type2_payload_jitter=1,
                band_collision_probability=2.0,
            )
