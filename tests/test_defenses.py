"""Tests for the countermeasures and their evaluation."""

from __future__ import annotations

import pytest

from repro.core.features import LABEL_TYPE1, LABEL_TYPE2, extract_client_records
from repro.defenses.base import apply_defense
from repro.defenses.compression import CompressStateReports
from repro.defenses.evaluation import evaluate_defenses
from repro.defenses.padding import PadToConstant, PadToMultiple
from repro.defenses.splitting import SplitRecords
from repro.defenses.timing import TimingOnlyAttack, timing_question_recall
from repro.exceptions import DefenseError
from repro.streaming.events import EventKind


@pytest.fixture(scope="module")
def session_records(request):
    """Client records of the shared Ubuntu session (module-scoped for speed)."""
    ubuntu_session = request.getfixturevalue("ubuntu_session")
    return extract_client_records(
        ubuntu_session.trace, server_ip=ubuntu_session.trace.server_ip
    )


class TestPadding:
    def test_pad_to_multiple_rounds_up(self, session_records):
        defended = apply_defense(PadToMultiple(256), session_records)
        assert all(
            record.wire_length % 256 == 0
            for record in defended
            if record.is_application_data
        )
        assert len(defended) == len(session_records)

    def test_pad_to_constant_floors_all_records(self, session_records):
        defended = apply_defense(PadToConstant(4096), session_records)
        lengths = {r.wire_length for r in defended if r.is_application_data}
        assert min(lengths) >= 4096

    def test_constant_padding_merges_json_bands(self, session_records):
        defended = apply_defense(PadToConstant(4096), session_records)
        type1 = {r.wire_length for r in defended if r.label == LABEL_TYPE1}
        type2 = {r.wire_length for r in defended if r.label == LABEL_TYPE2}
        other = {r.wire_length for r in defended if r.label not in (LABEL_TYPE1, LABEL_TYPE2)}
        assert type1 == type2 == {4096}
        assert 4096 in other

    def test_small_padding_preserves_band_separation(self, session_records):
        defended = apply_defense(PadToMultiple(16), session_records)
        type1 = {r.wire_length for r in defended if r.label == LABEL_TYPE1}
        type2 = {r.wire_length for r in defended if r.label == LABEL_TYPE2}
        assert not type1 & type2

    def test_overhead_accounted(self, session_records):
        defense = PadToMultiple(512)
        defended = defense.transform(session_records)
        assert defense.overhead_bytes(session_records, defended) > 0

    def test_invalid_configuration(self):
        with pytest.raises(DefenseError):
            PadToMultiple(0)
        with pytest.raises(DefenseError):
            PadToConstant(-1)


class TestSplitting:
    def test_large_records_split_into_parts(self, session_records):
        defense = SplitRecords(parts=3, min_length_to_split=1800)
        defended = apply_defense(defense, session_records)
        original_large = [r for r in session_records if r.wire_length >= 1800 and r.is_application_data]
        assert len(defended) == len(session_records) + 2 * len(original_large)
        assert all(r.wire_length < 1800 for r in defended if r.label == LABEL_TYPE1)

    def test_split_preserves_total_payload_roughly(self, session_records):
        defense = SplitRecords(parts=2)
        defended = defense.transform(session_records)
        # Overhead per split is bounded by the per-part framing bytes.
        assert 0 <= defense.overhead_bytes(session_records, defended) <= 100 * len(session_records)

    def test_invalid_parts(self):
        with pytest.raises(DefenseError):
            SplitRecords(parts=1)


class TestCompression:
    def test_compression_shrinks_large_records(self, session_records):
        defense = CompressStateReports(mean_ratio=0.35)
        defended = apply_defense(defense, session_records)
        assert defense.overhead_bytes(session_records, defended) < 0
        type1_lengths = [r.wire_length for r in defended if r.label == LABEL_TYPE1]
        assert max(type1_lengths) < 2211

    def test_invalid_ratio(self):
        with pytest.raises(DefenseError):
            CompressStateReports(mean_ratio=0.0)
        with pytest.raises(DefenseError):
            CompressStateReports(mean_ratio=0.1, ratio_jitter=0.2)


class TestDefenseEvaluation:
    def test_constant_padding_defeats_the_adaptive_attack(
        self, training_sessions, ubuntu_session, windows_session
    ):
        evaluations = evaluate_defenses(
            [PadToConstant(4096)],
            train_sessions=training_sessions,
            test_sessions=[ubuntu_session, windows_session],
        )
        by_name = {evaluation.defense_name: evaluation for evaluation in evaluations}
        assert by_name["no defense"].choice_accuracy == pytest.approx(1.0)
        assert by_name["pad-to-constant-4096"].choice_accuracy < 0.6
        assert (
            by_name["pad-to-constant-4096"].mean_overhead_bytes_per_session
            > by_name["no defense"].mean_overhead_bytes_per_session
        )

    def test_weak_padding_leaves_attack_mostly_intact(
        self, training_sessions, ubuntu_session
    ):
        evaluations = evaluate_defenses(
            [PadToMultiple(16)],
            train_sessions=training_sessions,
            test_sessions=[ubuntu_session],
            include_undefended=False,
        )
        assert evaluations[0].choice_accuracy >= 0.9

    def test_requires_sessions(self, training_sessions):
        with pytest.raises(DefenseError):
            evaluate_defenses([PadToConstant(4096)], [], training_sessions)


class TestTimingSideChannel:
    def test_unanswered_uplink_detection_finds_question_reports(
        self, ubuntu_session, session_records
    ):
        attack = TimingOnlyAttack()
        times = attack.unanswered_uplink_times(session_records, ubuntu_session.trace)
        # Every type-1 ("question on screen") report is an uplink record with
        # no media response behind it, so it must be among the unanswered
        # uplinks.  (Type-2 reports are immediately followed by the requested
        # alternative branch, so they do not share this signature.)
        question_times = [
            record.timestamp for record in session_records if record.label == LABEL_TYPE1
        ]
        for question_time in question_times:
            assert any(abs(question_time - t) < 1e-6 for t in times)

    def test_timing_question_recall_on_undefended_trace(self, ubuntu_session, session_records):
        attack = TimingOnlyAttack()
        inferred = attack.infer(session_records, ubuntu_session.trace)
        question_times = [
            event.timestamp
            for event in ubuntu_session.events
            if event.kind is EventKind.QUESTION_SHOWN
        ]
        recall = timing_question_recall(inferred, question_times)
        assert recall >= 0.8

    def test_timing_attack_survives_constant_padding(self, ubuntu_session, session_records):
        defended = apply_defense(PadToConstant(4096), session_records)
        attack = TimingOnlyAttack()
        inferred = attack.infer(defended, ubuntu_session.trace)
        question_times = [
            event.timestamp
            for event in ubuntu_session.events
            if event.kind is EventKind.QUESTION_SHOWN
        ]
        assert timing_question_recall(inferred, question_times) >= 0.8

    def test_invalid_parameters(self):
        from repro.core.inference import InferredChoices

        with pytest.raises(DefenseError):
            TimingOnlyAttack(response_window_seconds=0)
        with pytest.raises(DefenseError):
            timing_question_recall(InferredChoices(events=()), [], 1.0)
        with pytest.raises(DefenseError):
            timing_question_recall(InferredChoices(events=()), [1.0], 0.0)
