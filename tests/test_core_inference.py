"""Tests for record classification strategies and choice-sequence inference."""

from __future__ import annotations

import pytest

from repro.core.classifier import MLRecordClassifier, RecordTypeClassifier
from repro.core.features import ClientRecord, LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2
from repro.core.fingerprint import FingerprintLibrary
from repro.core.inference import ChoiceEvent, InferredChoices, infer_choices, reconstruct_path
from repro.exceptions import AttackError
from repro.ml.knn import KNearestNeighbors


def _record(timestamp: float, length: int, label: str | None = None) -> ClientRecord:
    return ClientRecord(timestamp=timestamp, wire_length=length, content_type=23, label=label)


def _training_records() -> list[ClientRecord]:
    records = [_record(float(i), 2212, LABEL_TYPE1) for i in range(6)]
    records += [_record(float(i) + 10, 3005, LABEL_TYPE2) for i in range(6)]
    records += [_record(float(i) + 20, 700, LABEL_OTHER) for i in range(20)]
    records += [_record(float(i) + 50, 2500, LABEL_OTHER) for i in range(10)]
    return records


class TestRecordTypeClassifier:
    def test_classify_against_library(self):
        library = FingerprintLibrary()
        library.learn("linux/firefox", _training_records())
        classifier = RecordTypeClassifier(library)
        labels = classifier.classify(
            [_record(1.0, 2212), _record(2.0, 3006), _record(3.0, 800)], "linux/firefox"
        )
        assert labels == [LABEL_TYPE1, LABEL_TYPE2, LABEL_OTHER]

    def test_empty_records_rejected(self):
        library = FingerprintLibrary()
        library.learn("linux/firefox", _training_records())
        with pytest.raises(AttackError):
            RecordTypeClassifier(library).classify([], "linux/firefox")


class TestMLRecordClassifier:
    def test_fit_and_classify(self):
        classifier = MLRecordClassifier(KNearestNeighbors(k=3))
        classifier.fit(_training_records())
        labels = classifier.classify([_record(1.0, 2212), _record(2.0, 680)])
        assert labels == [LABEL_TYPE1, LABEL_OTHER]

    def test_classify_before_fit_rejected(self):
        with pytest.raises(AttackError):
            MLRecordClassifier(KNearestNeighbors()).classify([_record(1.0, 2212)])


class TestInferChoices:
    def test_default_only_session(self):
        records = [_record(10.0, 2212), _record(60.0, 2212), _record(110.0, 2212)]
        labels = [LABEL_TYPE1, LABEL_TYPE1, LABEL_TYPE1]
        inferred = infer_choices(records, labels)
        assert inferred.default_pattern == (True, True, True)
        assert inferred.non_default_count == 0

    def test_type2_marks_non_default(self):
        records = [
            _record(10.0, 2212),
            _record(14.0, 3005),
            _record(60.0, 2212),
            _record(110.0, 2212),
            _record(113.0, 3005),
        ]
        labels = [LABEL_TYPE1, LABEL_TYPE2, LABEL_TYPE1, LABEL_TYPE1, LABEL_TYPE2]
        inferred = infer_choices(records, labels)
        assert inferred.default_pattern == (False, True, False)
        assert inferred.decision_latencies() == pytest.approx([4.0, 3.0])

    def test_other_records_are_ignored(self):
        records = [_record(10.0, 2212)] + [_record(11.0 + i, 700) for i in range(5)]
        labels = [LABEL_TYPE1] + [LABEL_OTHER] * 5
        assert infer_choices(records, labels).default_pattern == (True,)

    def test_orphan_type2_still_counts_as_non_default(self):
        # The type-1 for this question was lost; the type-2 alone still
        # reveals a non-default choice happened.
        records = [_record(10.0, 3005), _record(60.0, 2212)]
        labels = [LABEL_TYPE2, LABEL_TYPE1]
        inferred = infer_choices(records, labels)
        assert inferred.default_pattern == (False, True)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AttackError):
            infer_choices([_record(1.0, 2212)], [])

    def test_empty_input_rejected(self):
        with pytest.raises(AttackError):
            infer_choices([], [])


class TestChoiceEventValidation:
    def test_non_default_requires_type2_time(self):
        with pytest.raises(AttackError):
            ChoiceEvent(index=0, question_shown_at=1.0, took_default=False, type2_seen_at=None)

    def test_negative_index_rejected(self):
        with pytest.raises(AttackError):
            ChoiceEvent(index=-1, question_shown_at=1.0, took_default=True)


class TestReconstructPath:
    def test_pattern_maps_to_segments(self, minimal_graph):
        inferred = InferredChoices(
            events=(
                ChoiceEvent(0, 10.0, True),
                ChoiceEvent(1, 60.0, False, type2_seen_at=62.0),
            )
        )
        path = reconstruct_path(minimal_graph, inferred)
        assert path.segment_ids == ("S0", "S1", "S2p")
        assert path.selected_labels() == ("option_default_1", "option_alternate_2")
