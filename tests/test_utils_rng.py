"""Tests for deterministic random-number handling."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomSource, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(1, "tls") == derive_seed(1, "tls")

    def test_different_names_different_seeds(self):
        assert derive_seed(1, "tls") != derive_seed(1, "net")

    def test_different_base_seeds_differ(self):
        assert derive_seed(1, "tls") != derive_seed(2, "tls")

    def test_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_seed_is_non_negative(self):
        assert derive_seed(123, "x", 7) >= 0

    def test_spawn_rng_reproducible(self):
        first = spawn_rng(5, "stream").integers(0, 1000, size=8)
        second = spawn_rng(5, "stream").integers(0, 1000, size=8)
        assert list(first) == list(second)


class TestRandomSource:
    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError):
            RandomSource(-1)

    def test_children_are_decorrelated_but_deterministic(self):
        a = RandomSource(3).child("x").integer(0, 10_000)
        b = RandomSource(3).child("x").integer(0, 10_000)
        c = RandomSource(3).child("y").integer(0, 10_000)
        assert a == b
        assert a != c or RandomSource(3).child("y").integer(0, 10_000) == c

    def test_child_order_independence(self):
        root = RandomSource(9)
        first = root.child("a").uniform()
        _ = root.child("b").uniform()
        again = RandomSource(9).child("a").uniform()
        assert first == pytest.approx(again)

    def test_integer_bounds_inclusive(self):
        source = RandomSource(4)
        values = {source.integer(2, 4) for _ in range(200)}
        assert values == {2, 3, 4}

    def test_integer_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource(1).integer(5, 4)

    def test_jittered_within_bounds(self):
        source = RandomSource(5)
        for _ in range(100):
            value = source.jittered(100, 3)
            assert 97 <= value <= 103

    def test_jittered_zero_jitter_is_exact(self):
        assert RandomSource(5).jittered(42, 0) == 42

    def test_jittered_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource(5).jittered(42, -1)

    def test_truncated_normal_respects_bounds(self):
        source = RandomSource(6)
        for _ in range(100):
            value = source.truncated_normal(0.0, 10.0, -1.0, 1.0)
            assert -1.0 <= value <= 1.0

    def test_bernoulli_extremes(self):
        source = RandomSource(7)
        assert source.bernoulli(1.0) is True
        assert source.bernoulli(0.0) is False

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            RandomSource(7).bernoulli(1.5)

    def test_choice_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource(8).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        source = RandomSource(9)
        picks = {source.weighted_choice({"a": 1.0, "b": 0.0}) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            RandomSource(9).weighted_choice({"a": 0.0})

    def test_sample_without_replacement(self):
        source = RandomSource(10)
        sample = source.sample(list(range(20)), 5)
        assert len(sample) == 5
        assert len(set(sample)) == 5

    def test_sample_too_many_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource(10).sample([1, 2], 3)

    def test_random_bytes_length_and_determinism(self):
        assert RandomSource(11).random_bytes(0) == b""
        first = RandomSource(11).random_bytes(64)
        second = RandomSource(11).random_bytes(64)
        assert len(first) == 64
        assert first == second

    def test_exponential_positive(self):
        assert RandomSource(12).exponential(2.0) > 0

    def test_exponential_rejects_non_positive_mean(self):
        with pytest.raises(ConfigurationError):
            RandomSource(12).exponential(0.0)
