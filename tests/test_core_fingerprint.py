"""Tests for record-length band fingerprints."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.features import ClientRecord, LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2
from repro.core.fingerprint import FingerprintLibrary, LengthBand, RecordLengthFingerprint
from repro.exceptions import FingerprintError


def _record(length: int, label: str) -> ClientRecord:
    return ClientRecord(timestamp=1.0, wire_length=length, content_type=23, label=label)


def _training_records() -> list[ClientRecord]:
    records = [_record(length, LABEL_TYPE1) for length in (2211, 2212, 2213)]
    records += [_record(length, LABEL_TYPE2) for length in (2992, 3000, 3017)]
    records += [_record(length, LABEL_OTHER) for length in (600, 2500, 4500)]
    return records


class TestLengthBand:
    def test_contains_and_width(self):
        band = LengthBand(10, 20)
        assert band.contains(10) and band.contains(20) and not band.contains(21)
        assert band.width == 11

    def test_widened(self):
        assert LengthBand(10, 20).widened(3) == LengthBand(7, 23)
        assert LengthBand(2, 5).widened(5).low == 1  # clamped at 1

    def test_overlaps(self):
        assert LengthBand(10, 20).overlaps(LengthBand(20, 30))
        assert not LengthBand(10, 20).overlaps(LengthBand(21, 30))

    def test_from_values(self):
        band = LengthBand.from_values([5, 9, 7], margin=1)
        assert band == LengthBand(4, 10)

    def test_invalid_bands_rejected(self):
        with pytest.raises(FingerprintError):
            LengthBand(5, 4)
        with pytest.raises(FingerprintError):
            LengthBand(0, 4)
        with pytest.raises(FingerprintError):
            LengthBand.from_values([], margin=0)

    def test_dict_round_trip(self):
        band = LengthBand(2211, 2213)
        assert LengthBand.from_dict(band.as_dict()) == band


class TestRecordLengthFingerprint:
    def test_learn_and_classify(self):
        fingerprint = RecordLengthFingerprint.learn("linux/firefox", _training_records(), margin=2)
        assert fingerprint.classify_length(2212) == LABEL_TYPE1
        assert fingerprint.classify_length(3005) == LABEL_TYPE2
        assert fingerprint.classify_length(700) == LABEL_OTHER
        assert fingerprint.classify_length(5000) == LABEL_OTHER

    def test_margin_widens_bands(self):
        tight = RecordLengthFingerprint.learn("env", _training_records(), margin=0)
        wide = RecordLengthFingerprint.learn("env", _training_records(), margin=5)
        assert tight.classify_length(2216) == LABEL_OTHER
        assert wide.classify_length(2216) == LABEL_TYPE1

    def test_learn_requires_both_classes(self):
        only_type1 = [_record(2212, LABEL_TYPE1), _record(600, LABEL_OTHER)]
        with pytest.raises(FingerprintError):
            RecordLengthFingerprint.learn("env", only_type1)

    def test_overlapping_bands_rejected(self):
        records = [_record(1000, LABEL_TYPE1), _record(1001, LABEL_TYPE2)]
        with pytest.raises(FingerprintError):
            RecordLengthFingerprint.learn("env", records, margin=5)

    def test_classify_records(self):
        fingerprint = RecordLengthFingerprint.learn("env", _training_records(), margin=2)
        labels = fingerprint.classify([_record(2212, None), _record(450, None)])
        assert labels == [LABEL_TYPE1, LABEL_OTHER]

    def test_dict_round_trip(self):
        fingerprint = RecordLengthFingerprint.learn("env", _training_records(), margin=2)
        restored = RecordLengthFingerprint.from_dict(fingerprint.as_dict())
        assert restored == fingerprint


class TestFingerprintLibrary:
    def test_learn_get_contains(self):
        library = FingerprintLibrary()
        library.learn("linux/firefox", _training_records())
        assert "linux/firefox" in library
        assert len(library) == 1
        assert library.get("linux/firefox").condition_key == "linux/firefox"

    def test_missing_environment_raises(self):
        with pytest.raises(FingerprintError):
            FingerprintLibrary().get("mac/safari")

    def test_save_and_load(self, tmp_path):
        library = FingerprintLibrary()
        library.learn("linux/firefox", _training_records())
        library.learn("windows/firefox", [
            _record(2342, LABEL_TYPE1),
            _record(3130, LABEL_TYPE2),
            _record(800, LABEL_OTHER),
        ])
        path = tmp_path / "library.json"
        library.save(path)
        restored = FingerprintLibrary.load(path)
        assert set(restored.condition_keys) == set(library.condition_keys)
        assert restored.get("linux/firefox").type1_band == library.get("linux/firefox").type1_band

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FingerprintError):
            FingerprintLibrary.load(tmp_path / "missing.json")


class TestLibrarySerialisationGoldenFile:
    """Pin the on-disk library JSON against a committed golden file.

    The distributed-calibration CI jobs verify `merge-fingerprints` output
    with a plain `diff` against single-machine training, so any drift in the
    serialisation (key order, indentation, field names) silently breaks that
    equality out in CI.  Schema changes are fine — but they must be made
    deliberately, by regenerating this golden file in the same commit.
    """

    GOLDEN = Path(__file__).parent / "data" / "fingerprint_library.golden.json"

    def _golden_library(self) -> FingerprintLibrary:
        library = FingerprintLibrary()
        library.add(
            RecordLengthFingerprint(
                condition_key="windows/firefox",
                type1_band=LengthBand(low=201, high=233),
                type2_band=LengthBand(low=618, high=642),
                training_records=48,
            )
        )
        library.add(
            RecordLengthFingerprint(
                condition_key="linux/firefox",
                type1_band=LengthBand(low=196, high=228),
                type2_band=LengthBand(low=611, high=637),
                training_records=52,
            )
        )
        return library

    def test_save_matches_golden_bytes(self, tmp_path):
        path = tmp_path / "library.json"
        self._golden_library().save(path)
        assert path.read_bytes() == self.GOLDEN.read_bytes(), (
            "FingerprintLibrary.save output drifted from the golden file; "
            "if the schema change is intentional, regenerate "
            "tests/data/fingerprint_library.golden.json in this commit"
        )

    def test_insertion_order_cannot_leak_into_the_bytes(self, tmp_path):
        # The golden library inserts windows before linux; reversing the
        # insertion order must not change a byte (keys are sorted on save).
        library = FingerprintLibrary()
        for key in sorted(self._golden_library().condition_keys):
            library.add(self._golden_library().get(key))
        path = tmp_path / "library.json"
        library.save(path)
        assert path.read_bytes() == self.GOLDEN.read_bytes()

    def test_golden_file_loads_back(self):
        restored = FingerprintLibrary.load(self.GOLDEN)
        assert set(restored.condition_keys) == {"windows/firefox", "linux/firefox"}
        assert restored.get("linux/firefox").training_records == 52
