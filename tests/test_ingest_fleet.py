"""Stress, fault-injection and byte-identity tests for the watch fleet.

The tentpole guarantees under test:

* **Bounded backpressure** — a multi-threaded publisher flooding eight
  sources with hundreds of tiny captures never pushes the bounded queue
  past its high watermark, and every capture is processed exactly once.
* **Merge canonicalization** — any partition of a verdict set into
  per-source segments, in any arrival order, merges to the same canonical
  bytes, with torn trailing lines repaired exactly as ``ResultsLog.load``
  repairs them.
* **Hot reload** — the fingerprint library is swapped between batches on a
  content change, never mid-attack; corrupt staged bytes are reported once
  and ignored.
* **The hard wall** — a multi-source ``--once`` results log is
  byte-identical to serial single-source fleet runs concatenated in
  canonical source order, under different worker counts, tiny queue
  bounds, and a SIGKILL/restart schedule.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.core.fingerprint import FingerprintLibrary
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.collection import default_study_script
from repro.dataset.shards import iter_shard_training_sessions
from repro.exceptions import IngestError
from repro.ingest.fleet import (
    BoundedIngestQueue,
    FleetSource,
    FleetWatchService,
    LibraryReloadWatcher,
    validate_sources,
)
from repro.ingest.log import (
    CaptureVerdict,
    ResultsLog,
    canonical_log_bytes,
    merge_results_logs,
    parse_results_log_bytes,
    verdict_line,
)
from repro.ingest.metrics import METRICS_PATH, IngestMetrics, MetricsServer


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory) -> Path:
    """A small generated dataset whose pcaps double as 'live' captures."""
    directory = tmp_path_factory.mktemp("fleet-dataset")
    assert (
        main(
            [
                "generate-dataset",
                str(directory),
                "--viewers",
                "3",
                "--seed",
                "11",
                "--no-cross-traffic",
            ]
        )
        == 0
    )
    return directory


@pytest.fixture(scope="module")
def library_path(dataset_dir, tmp_path_factory) -> Path:
    """Fingerprints trained on every viewer, so no capture is skipped."""
    attack = WhiteMirrorAttack(graph=default_study_script())
    attack.train(iter_shard_training_sessions(dataset_dir))
    path = tmp_path_factory.mktemp("fleet-lib") / "library.json"
    attack.library.save(path)
    return path


def _make_source(dataset_dir: Path, destination: Path, pcaps=None) -> list[Path]:
    """Replay dataset captures (and metadata) into one source directory."""
    destination.mkdir(parents=True, exist_ok=True)
    shutil.copy(dataset_dir / "metadata.json", destination / "metadata.json")
    chosen = (
        pcaps
        if pcaps is not None
        else sorted((dataset_dir / "traces").glob("*.pcap"))
    )
    return [Path(shutil.copy(p, destination / p.name)) for p in chosen]


def _fleet_argv(sources, library, log, *extra) -> list[str]:
    argv = ["watch", "--library", str(library), "--once", "--results-log", str(log)]
    for source in sources:
        argv += ["--source", str(source)]
    return argv + list(extra)


def _serial_reference(sources, library, tmp: Path) -> bytes:
    """N single-source fleet runs, concatenated in canonical label order."""
    chunks = []
    for source in sorted(sources, key=str):
        segment = tmp / f"serial-{Path(source).name}.jsonl"
        assert main(_fleet_argv([source], library, segment)) == 0
        chunks.append(segment.read_bytes())
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Bounded queue semantics
# ---------------------------------------------------------------------------


class TestBoundedIngestQueue:
    def _drain_all(self, queue: BoundedIngestQueue) -> list[tuple[str, str]]:
        order = []
        while True:
            batch = queue.drain_next_batch()
            if batch is None:
                return order
            source, paths = batch
            order.extend((source, path.name) for path in paths)

    def test_drain_order_is_canonical_under_any_bound(self):
        offers = [
            (label, [Path(f"{label}-{index:03d}.pcap") for index in range(7)])
            for label in ("src-a", "src-b", "src-c")
        ]
        orders = []
        for high, low in ((3, 1), (5, 2), (1000, 500)):
            queue = BoundedIngestQueue(high_watermark=high, low_watermark=low)
            for label, paths in offers:
                queue.offer(label, paths)
            orders.append(self._drain_all(queue))
            assert queue.peak_depth <= high
        assert orders[0] == orders[1] == orders[2]
        assert orders[0] == sorted(orders[0])  # canonical (source, name) order

    def test_arrivals_never_overtake_parked_captures(self):
        saturated = []
        queue = BoundedIngestQueue(
            high_watermark=2,
            low_watermark=1,
            on_saturated=lambda source, depth: saturated.append((source, depth)),
        )
        queue.offer("a", [Path(f"a-{i}.pcap") for i in range(5)])
        # The queue is saturated: a later source's arrival must park even
        # though its label sorts after everything pending.
        queue.offer("b", [Path("b-0.pcap")])
        assert queue.saturated
        assert saturated == [("a", 2)]
        order = self._drain_all(queue)
        assert order == [
            ("a", "a-0.pcap"),
            ("a", "a-1.pcap"),
            ("a", "a-2.pcap"),
            ("a", "a-3.pcap"),
            ("a", "a-4.pcap"),
            ("b", "b-0.pcap"),
        ]
        assert not queue.saturated
        assert queue.parked_count == 0

    def test_duplicate_offers_are_dropped(self):
        queue = BoundedIngestQueue(high_watermark=8, low_watermark=4)
        first = queue.offer("a", [Path("x.pcap")])
        second = queue.offer("a", [Path("x.pcap")])
        other_source = queue.offer("b", [Path("x.pcap")])
        assert [p.name for p in first] == ["x.pcap"]
        assert second == []
        assert [p.name for p in other_source] == ["x.pcap"]  # per-source key

    def test_saturation_episodes_are_counted_once_each(self):
        queue = BoundedIngestQueue(high_watermark=2, low_watermark=0)
        queue.offer("a", [Path(f"a-{i}.pcap") for i in range(4)])
        assert queue.saturation_events == 1
        self._drain_all(queue)
        assert not queue.saturated
        queue.offer("a", [Path(f"b-{i}.pcap") for i in range(4)])
        assert queue.saturation_events == 2


# ---------------------------------------------------------------------------
# Stress harness: a seeded multi-threaded flood through a stub service
# ---------------------------------------------------------------------------


class _RecordingService:
    """AttackServiceLike stub: records calls instead of attacking pcaps."""

    def __init__(self):
        self.processed: list[tuple[str, str]] = []
        self.replaced: list[FingerprintLibrary] = []
        self.calls: list[tuple[str, object]] = []

    def process(self, paths, on_verdict=None, on_skip=None, source=None):
        batch = [(source, Path(path).name) for path in paths]
        self.processed.extend(batch)
        self.calls.append(("process", batch))
        return []

    def replace_library(self, library):
        self.replaced.append(library)
        self.calls.append(("reload", library))


def _publish(directory: Path, name: str, payload: bytes) -> None:
    """The cooperative marker protocol: stage, then atomic rename."""
    staged = directory / (name + ".inprogress")
    staged.write_bytes(payload)
    os.replace(staged, directory / name)


class TestFleetStressFlood:
    SOURCES = 8
    PER_SOURCE = 30
    HIGH, LOW = 16, 8

    def test_flood_is_bounded_and_processed_exactly_once(self, tmp_path):
        roots = []
        for index in range(self.SOURCES):
            root = tmp_path / f"box-{index}"
            root.mkdir()
            roots.append(root)
        total = self.SOURCES * self.PER_SOURCE
        # Half the flood is already on disk when the fleet starts (so the
        # first offers overrun the watermark deterministically); seeded
        # publisher threads land the rest while the fleet is draining.
        for index, root in enumerate(roots):
            for capture in range(self.PER_SOURCE // 2):
                _publish(root, f"cap-{capture:03d}.pcap", b"x" * 64)

        def flood(root: Path, seed: int) -> None:
            rng = random.Random(seed)
            for capture in range(self.PER_SOURCE // 2, self.PER_SOURCE):
                time.sleep(rng.random() * 0.002)
                _publish(root, f"cap-{capture:03d}.pcap", b"x" * 64)

        threads = [
            threading.Thread(target=flood, args=(root, 1000 + index))
            for index, root in enumerate(roots)
        ]
        service = _RecordingService()
        fleet = FleetWatchService(
            service=service,
            sources=validate_sources([str(root) for root in roots]),
            queue_high=self.HIGH,
            queue_low=self.LOW,
            quiet_seconds=0.0,
        )
        for thread in threads:
            thread.start()
        deadline = time.time() + 60

        def should_stop() -> bool:
            done = all(not thread.is_alive() for thread in threads)
            return (done and len(service.processed) >= total) or (
                time.time() > deadline
            )

        fleet.run(follow=True, poll_interval=0.005, should_stop=should_stop)
        for thread in threads:
            thread.join()
        assert time.time() < deadline, "flood did not drain within 60s"
        # Exactly once: every published capture, no duplicates, no gaps.
        expected = {
            (str(root), f"cap-{capture:03d}.pcap")
            for root in roots
            for capture in range(self.PER_SOURCE)
        }
        assert len(service.processed) == total
        assert set(service.processed) == expected
        # Bounded memory: the pending queue never overran the watermark,
        # and the flood demonstrably hit it.
        assert fleet.queue.peak_depth <= self.HIGH
        assert fleet.queue.saturation_events >= 1
        assert fleet.queue.parked_count == 0


# ---------------------------------------------------------------------------
# Merge canonicalization properties
# ---------------------------------------------------------------------------


def _verdict(index: int, source: str | None) -> CaptureVerdict:
    return CaptureVerdict(
        capture=f"cap-{index:04d}.pcap",
        fingerprint=f"{index:064x}",
        condition_key="linux/firefox",
        client_ip="192.168.1.23",
        server_ip="198.51.100.7",
        pattern=(index % 2 == 0, True),
        truth=(True, True),
        source=source,
    )


class TestMergeCanonicalization:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_any_partition_and_arrival_order_merges_identically(
        self, seed, tmp_path
    ):
        rng = random.Random(seed)
        sources = ["src-a", "src-b", "src-c", None]
        verdicts = [
            _verdict(index, rng.choice(sources)) for index in range(30)
        ]
        reference = canonical_log_bytes(verdicts)
        # Shuffle arrivals and deal them into a random number of segments.
        rng.shuffle(verdicts)
        segments = [tmp_path / f"seg-{i}.jsonl" for i in range(rng.randint(1, 5))]
        for segment in segments:
            segment.write_text("")
        for verdict in verdicts:
            segment = rng.choice(segments)
            with open(segment, "a", encoding="utf-8") as handle:
                handle.write(verdict_line(verdict))
        merged = merge_results_logs(segments, output=tmp_path / "merged.jsonl")
        assert merged == reference
        assert (tmp_path / "merged.jsonl").read_bytes() == reference
        # Canonicalization is idempotent: merging the merge is a no-op.
        assert merge_results_logs([tmp_path / "merged.jsonl"]) == reference

    def test_torn_trailing_line_is_repaired_exactly_like_load(self, tmp_path):
        verdicts = [_verdict(index, "src-a") for index in range(3)]
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            "".join(verdict_line(v) for v in verdicts) + '{"version":1,"cap'
        )
        raw = torn.read_bytes()
        parsed, consumed = parse_results_log_bytes(raw, torn)
        assert parsed == verdicts
        assert raw[:consumed].endswith(b"}\n")
        # merge drops the debris without touching the segment...
        assert merge_results_logs([torn]) == canonical_log_bytes(verdicts)
        assert torn.read_bytes() == raw
        # ...and ResultsLog.load repairs the same prefix in place.
        assert ResultsLog(torn).load() == verdicts
        assert torn.read_bytes() == raw[:consumed]

    def test_terminated_garbage_is_not_mistaken_for_crash_debris(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        with pytest.raises(IngestError, match="corrupt at byte 0"):
            merge_results_logs([bad])

    def test_merge_dedupes_on_source_and_fingerprint(self, tmp_path):
        verdict = _verdict(7, "src-a")
        duplicate = tmp_path / "dup.jsonl"
        duplicate.write_text(verdict_line(verdict) * 3)
        other_source = _verdict(7, "src-b")  # same content, other source
        second = tmp_path / "other.jsonl"
        second.write_text(verdict_line(other_source))
        merged = merge_results_logs([duplicate, second])
        assert merged == canonical_log_bytes([verdict, other_source])
        assert merged.count(b"\n") == 2

    def test_missing_segments_are_silent_empty_sources(self, tmp_path):
        verdict = _verdict(1, "src-a")
        present = tmp_path / "present.jsonl"
        present.write_text(verdict_line(verdict))
        merged = merge_results_logs([present, tmp_path / "never-wrote.jsonl"])
        assert merged == canonical_log_bytes([verdict])


# ---------------------------------------------------------------------------
# Hot library reload
# ---------------------------------------------------------------------------


def _restaged_bytes(library_path: Path) -> bytes:
    """The same library with different bytes (re-indented JSON)."""
    payload = json.loads(library_path.read_text())
    return json.dumps(payload, indent=4).encode("utf-8")


class TestHotReload:
    def test_missing_stage_fails_loudly_at_startup(self, tmp_path):
        with pytest.raises(IngestError, match="cannot read --reload-library"):
            LibraryReloadWatcher(tmp_path / "missing.json")

    def test_corrupt_stage_fails_loudly_at_startup(self, tmp_path):
        stage = tmp_path / "stage.json"
        stage.write_text("{broken")
        with pytest.raises(
            IngestError, match="not a loadable fingerprint library"
        ):
            LibraryReloadWatcher(stage)

    def test_reload_keys_on_content_not_mtime(self, library_path, tmp_path):
        stage = tmp_path / "stage.json"
        shutil.copy(library_path, stage)
        watcher = LibraryReloadWatcher(stage)
        first = watcher.fingerprint
        # A touch with identical bytes is a no-op.
        os.utime(stage)
        assert watcher.poll() is None
        # Different bytes, same library: a real reload.
        stage.write_bytes(_restaged_bytes(library_path))
        assert watcher.poll() is not None
        assert watcher.fingerprint != first

    def test_corrupt_stage_is_reported_once_and_ignored(
        self, library_path, tmp_path
    ):
        stage = tmp_path / "stage.json"
        shutil.copy(library_path, stage)
        watcher = LibraryReloadWatcher(stage)
        before = watcher.library
        errors = []
        stage.write_text("{torn mid-copy")
        assert watcher.poll(on_error=errors.append) is None
        assert watcher.poll(on_error=errors.append) is None  # no storm
        assert len(errors) == 1
        assert "keeping the current library" in str(errors[0])
        assert watcher.library is before
        # The writer finishes the stage: the next poll swaps it in.
        stage.write_bytes(_restaged_bytes(library_path))
        assert watcher.poll(on_error=errors.append) is not None
        assert len(errors) == 1

    def test_fleet_swaps_the_library_between_batches_never_mid_attack(
        self, library_path, tmp_path
    ):
        source = tmp_path / "box"
        source.mkdir()
        for index in range(3):
            _publish(source, f"cap-{index}.pcap", b"x" * 32)
        stage = tmp_path / "stage.json"
        shutil.copy(library_path, stage)
        watcher = LibraryReloadWatcher(stage)
        stage.write_bytes(_restaged_bytes(library_path))  # staged pre-run
        reloads = []
        service = _RecordingService()
        fleet = FleetWatchService(
            service=service,
            sources=validate_sources([str(source)]),
            reload_watcher=watcher,
            on_reloaded=lambda path, fingerprint: reloads.append(fingerprint),
        )
        fleet.run(follow=False)
        assert reloads == [watcher.fingerprint]
        assert len(service.replaced) == 1
        # The swap happened strictly before the batch was attacked.
        assert [kind for kind, _ in service.calls] == ["reload", "process"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_latency_percentiles_from_a_fake_clock(self):
        now = {"t": 100.0}
        metrics = IngestMetrics(clock=lambda: now["t"])
        for index, latency in enumerate((0.1, 0.2, 0.4)):
            metrics.record_arrival("src-a", f"cap-{index}.pcap")
            now["t"] += latency
            metrics.record_verdict("src-a", f"cap-{index}.pcap")
        snapshot = metrics.snapshot()
        assert snapshot["verdicts"] == 3
        latency = snapshot["latency_s"]
        assert latency["count"] == 3
        assert latency["p50"] == pytest.approx(0.2)
        assert latency["mean"] == pytest.approx(0.7 / 3)
        assert latency["p99"] <= 0.4 + 1e-9

    def test_endpoint_serves_the_snapshot_as_json(self):
        metrics = IngestMetrics()
        metrics.record_skip()
        metrics.set_queue_gauges(
            depth=3, parked=2, peak=8, high_watermark=8, low_watermark=4
        )
        server = MetricsServer(metrics, port=0)
        host, port = server.start()
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}{METRICS_PATH}"
            ) as response:
                assert response.status == 200
                payload = json.loads(response.read())
            assert payload["skips"] == 1
            assert payload["queue"]["peak_depth"] == 8
            assert payload["latency_s"] == {"count": 0}
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://{host}:{port}/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_watch_announces_the_metrics_endpoint(
        self, dataset_dir, library_path, tmp_path, capsys
    ):
        source = tmp_path / "box"
        _make_source(dataset_dir, source)
        log = tmp_path / "log.jsonl"
        assert (
            main(
                _fleet_argv([source], library_path, log, "--metrics-port", "0")
            )
            == 0
        )
        assert "metrics: http://127.0.0.1:" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The hard wall: fleet --once vs concatenated serial reference
# ---------------------------------------------------------------------------


@pytest.fixture()
def fleet_sources(dataset_dir, tmp_path) -> list[Path]:
    """Three source directories, the dataset's pcaps dealt round-robin."""
    pcaps = sorted((dataset_dir / "traces").glob("*.pcap"))
    sources = []
    for index, name in enumerate(["box-a", "box-b", "box-c"]):
        root = tmp_path / name
        _make_source(dataset_dir, root, pcaps[index::3])
        sources.append(root)
    return sources


class TestFleetByteIdentity:
    def test_fleet_once_equals_serial_concatenation_under_any_knobs(
        self, fleet_sources, library_path, tmp_path, capsys
    ):
        reference = _serial_reference(fleet_sources, library_path, tmp_path)
        assert reference  # the serial runs produced verdicts
        for index, extra in enumerate(
            (
                ("--workers", "1"),
                ("--workers", "2"),
                ("--workers", "2", "--queue-high", "2", "--queue-low", "1"),
                ("--queue-high", "1", "--queue-low", "0"),
            )
        ):
            log = tmp_path / f"fleet-{index}.jsonl"
            # Sources deliberately offered out of canonical order.
            shuffled = [fleet_sources[1], fleet_sources[2], fleet_sources[0]]
            assert main(_fleet_argv(shuffled, library_path, log, *extra)) == 0
            assert log.read_bytes() == reference
        output = capsys.readouterr().out
        assert "verdict: [" in output  # source attribution on the console
        assert "| source" in output  # per-source aggregate table

    def test_every_fleet_verdict_is_attributed_to_its_source(
        self, fleet_sources, library_path, tmp_path
    ):
        log = tmp_path / "fleet.jsonl"
        assert main(_fleet_argv(fleet_sources, library_path, log)) == 0
        records = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert records
        assert [r["source"] for r in records] == sorted(
            str(s) for s in fleet_sources
        )

    def test_recursive_sources_find_nested_captures(
        self, dataset_dir, library_path, tmp_path
    ):
        root = tmp_path / "box"
        captures = _make_source(dataset_dir, root)
        nested = root / "day-1"
        nested.mkdir()
        os.replace(captures[0], nested / captures[0].name)
        log = tmp_path / "log.jsonl"
        assert (
            main(_fleet_argv([root], library_path, log, "--recursive")) == 0
        )
        assert len(log.read_text().splitlines()) == len(captures)

    def test_sigkilled_fleet_restart_converges_on_the_reference_bytes(
        self, dataset_dir, library_path, tmp_path
    ):
        """The acceptance scenario: SIGKILL a follow-mode fleet after its
        first verdict, restart with ``--once``, and require the log to be
        byte-identical to the uninterrupted serial reference."""
        pcaps = sorted((dataset_dir / "traces").glob("*.pcap"))
        sources = []
        for name in ("box-a", "box-b"):
            root = tmp_path / name
            _make_source(dataset_dir, root, pcaps)  # full copy per source
            sources.append(root)
        reference = _serial_reference(sources, library_path, tmp_path)
        log = tmp_path / "fleet.jsonl"
        environment = dict(os.environ)
        environment["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + environment.get("PYTHONPATH", "")
        )
        argv = [
            sys.executable, "-m", "repro", "watch",
            "--source", str(sources[0]), "--source", str(sources[1]),
            "--library", str(library_path),
            "--follow", "--poll-interval", "0.1",
            "--results-log", str(log),
        ]
        process = subprocess.Popen(
            argv,
            env=environment,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                if log.exists() and len(log.read_bytes().splitlines()) >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("follow-mode fleet produced no verdict in 60s")
        finally:
            process.kill()
            process.wait(timeout=30)
        assert main(_fleet_argv(sources, library_path, log)) == 0
        assert log.read_bytes() == reference
        # Exactly one verdict per (source, capture): no duplicates, no gaps.
        keys = [
            (record["source"], record["fingerprint"])
            for record in map(json.loads, log.read_text().splitlines())
        ]
        assert len(keys) == len(set(keys)) == 2 * len(pcaps)


# ---------------------------------------------------------------------------
# Source validation details not reachable through the CLI error table
# ---------------------------------------------------------------------------


class TestSourceValidation:
    def test_symlinked_duplicate_is_detected_by_resolution(self, tmp_path):
        real = tmp_path / "real"
        real.mkdir()
        alias = tmp_path / "alias"
        alias.symlink_to(real)
        with pytest.raises(IngestError, match="resolves to the same directory"):
            validate_sources([str(real), str(alias)])

    def test_sources_come_back_in_canonical_label_order(self, tmp_path):
        for name in ("zeta", "alpha"):
            (tmp_path / name).mkdir()
        ordered = validate_sources(
            [str(tmp_path / "zeta"), str(tmp_path / "alpha")]
        )
        assert [Path(source.label).name for source in ordered] == [
            "alpha",
            "zeta",
        ]
        assert all(isinstance(source, FleetSource) for source in ordered)
