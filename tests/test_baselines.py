"""Tests for the inter-video baselines and the comparison harness."""

from __future__ import annotations

import pytest

from repro.baselines.bitrate import BitrateFingerprinter, BitrateProfile, profile_from_trace
from repro.baselines.burst import BurstFingerprinter, BurstSequence, extract_bursts
from repro.baselines.comparison import build_branch_tasks, run_comparison
from repro.exceptions import AttackError


class TestBitrateProfile:
    def test_profile_from_trace(self, minimal_session):
        profile = profile_from_trace(minimal_session.trace, window_seconds=2.0)
        assert profile.mean_throughput_bps > 0
        assert len(profile.bytes_per_window) >= 1

    def test_time_slice(self, minimal_session):
        trace = minimal_session.trace
        full = profile_from_trace(trace)
        half = profile_from_trace(trace, start=0.0, end=trace.duration_seconds / 4)
        assert sum(half.bytes_per_window) <= sum(full.bytes_per_window)

    def test_as_vector_pads_and_truncates(self):
        profile = BitrateProfile(window_seconds=1.0, bytes_per_window=(10.0, 20.0))
        assert list(profile.as_vector(4)) == [10.0, 20.0, 0.0, 0.0]
        assert list(profile.as_vector(1)) == [10.0]

    def test_invalid_profiles_rejected(self):
        with pytest.raises(AttackError):
            BitrateProfile(window_seconds=0.0, bytes_per_window=(1.0,))
        with pytest.raises(AttackError):
            BitrateProfile(window_seconds=1.0, bytes_per_window=())

    def test_fingerprinter_requires_fit(self):
        with pytest.raises(AttackError):
            BitrateFingerprinter().predict([BitrateProfile(1.0, (1.0,))])


class TestBursts:
    def test_extract_bursts_groups_by_gap(self, minimal_session):
        sequence = extract_bursts(minimal_session.trace, gap_seconds=0.5)
        assert len(sequence.burst_sizes) >= 1
        assert sum(sequence.burst_sizes) > 0

    def test_feature_vector_shape(self):
        sequence = BurstSequence(burst_sizes=(100.0, 400.0), gap_seconds=0.5)
        assert sequence.feature_vector().shape == (5,)

    def test_fingerprinter_requires_fit(self):
        with pytest.raises(AttackError):
            BurstFingerprinter().predict([BurstSequence((1.0,), 0.5)])


class TestComparison:
    def test_branch_tasks_built_from_choice_events(self, ubuntu_session):
        tasks = build_branch_tasks([ubuntu_session])
        assert len(tasks) == ubuntu_session.path.choice_count
        assert [task.took_default for task in tasks] == list(
            ubuntu_session.ground_truth_pattern
        )

    def test_comparison_white_mirror_beats_baselines(
        self, study_graph, training_sessions, ubuntu_session, windows_session
    ):
        result = run_comparison(
            train_sessions=training_sessions,
            test_sessions=[ubuntu_session, windows_session],
            graph=study_graph,
        )
        assert result.white_mirror_accuracy >= 0.9
        assert result.white_mirror_accuracy > result.bitrate_baseline_accuracy
        assert result.white_mirror_accuracy > result.burst_baseline_accuracy
        assert result.advantage > 0.2
        assert len(result.as_rows()) == 3

    def test_comparison_requires_sessions(self, study_graph, training_sessions):
        with pytest.raises(AttackError):
            run_comparison([], training_sessions, study_graph)
