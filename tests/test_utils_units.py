"""Tests for unit conversion helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.units import (
    Bandwidth,
    bits_to_bytes,
    bytes_to_bits,
    kbps,
    mbps,
    milliseconds,
    seconds,
)


class TestConversions:
    def test_bytes_to_bits_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(123.0)) == pytest.approx(123.0)

    def test_bytes_to_bits_factor(self):
        assert bytes_to_bits(1) == 8

    def test_milliseconds(self):
        assert milliseconds(1500) == pytest.approx(1.5)

    def test_seconds_identity(self):
        assert seconds(2.5) == 2.5


class TestBandwidth:
    def test_kbps_and_mbps_builders(self):
        assert kbps(1000).bits_per_second == pytest.approx(1_000_000)
        assert mbps(1).bits_per_second == pytest.approx(1_000_000)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Bandwidth(bits_per_second=-1)

    def test_bytes_per_second(self):
        assert mbps(8).bytes_per_second == pytest.approx(1_000_000)

    def test_transfer_time(self):
        link = mbps(8)  # 1 MB/s
        assert link.transfer_time(2_000_000) == pytest.approx(2.0)

    def test_transfer_time_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Bandwidth(0).transfer_time(10)

    def test_bytes_in_duration(self):
        assert mbps(8).bytes_in(3.0) == pytest.approx(3_000_000)

    def test_bytes_in_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            mbps(8).bytes_in(-1)

    def test_scaled(self):
        assert mbps(10).scaled(0.5).megabits_per_second == pytest.approx(5.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            mbps(10).scaled(-0.1)

    def test_str_mentions_mbps(self):
        assert "Mbps" in str(mbps(4.2))
