"""Tests for TCP segmentation and flow reassembly."""

from __future__ import annotations

import pytest

from repro.exceptions import PacketError
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.flow import Flow, FlowTable
from repro.net.packet import Direction, Packet
from repro.net.tcp import TCPSender, segment_payload


@pytest.fixture()
def five_tuple() -> FiveTuple:
    return FiveTuple(
        client=Endpoint("192.168.1.23", 51742),
        server=Endpoint("198.51.100.7", 443),
    )


class TestSegmentation:
    def test_segment_payload_sizes(self):
        segments = segment_payload(b"a" * 3500, mss=1460)
        assert [len(s) for s in segments] == [1460, 1460, 580]

    def test_segment_empty_payload(self):
        assert segment_payload(b"", 1460) == []

    def test_segment_rejects_bad_mss(self):
        with pytest.raises(PacketError):
            segment_payload(b"abc", 0)


class TestTCPSender:
    def test_sequence_numbers_advance_by_payload(self, five_tuple):
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER, mss=1000)
        packets = sender.send(b"x" * 2500, timestamp=1.0)
        assert [p.sequence_number for p in packets] == [1, 1001, 2001]
        assert sender.next_sequence_number == 2501

    def test_annotations_attached_to_every_segment(self, five_tuple):
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER, mss=100)
        packets = sender.send(b"y" * 250, 2.0, annotations={"kind": "type1"})
        assert all(p.annotations == {"kind": "type1"} for p in packets)

    def test_empty_payload_rejected(self, five_tuple):
        with pytest.raises(PacketError):
            TCPSender(five_tuple, Direction.CLIENT_TO_SERVER).send(b"", 1.0)

    def test_ack_packet_has_no_payload(self, five_tuple):
        sender = TCPSender(five_tuple, Direction.SERVER_TO_CLIENT)
        ack = sender.send_ack(3.0)
        assert ack.payload == b""
        assert ack.direction is Direction.SERVER_TO_CLIENT

    def test_note_peer_progress_sets_ack_numbers(self, five_tuple):
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER)
        sender.note_peer_progress(777)
        packet = sender.send(b"abc", 1.0)[0]
        assert packet.acknowledgment_number == 777


class TestFlowReassembly:
    def test_reassemble_in_order(self, five_tuple):
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER, mss=4)
        flow = Flow(five_tuple)
        for packet in sender.send(b"hello world!", 1.0):
            flow.add(packet)
        assert flow.reassemble(Direction.CLIENT_TO_SERVER) == b"hello world!"
        assert flow.payload_bytes(Direction.CLIENT_TO_SERVER) == 12

    def test_duplicate_segments_suppressed(self, five_tuple):
        sender = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER, mss=8)
        flow = Flow(five_tuple)
        packets = sender.send(b"abcdefgh12345678", 1.0)
        for packet in packets:
            flow.add(packet)
        # A retransmitted copy of the first segment arrives later.
        flow.add(packets[0].as_retransmission(2.0))
        assert flow.reassemble(Direction.CLIENT_TO_SERVER) == b"abcdefgh12345678"
        assert flow.retransmission_count(Direction.CLIENT_TO_SERVER) == 1

    def test_wrong_flow_rejected(self, five_tuple):
        other = FiveTuple(client=Endpoint("10.0.0.1", 1024), server=Endpoint("10.0.0.2", 80))
        flow = Flow(five_tuple)
        packet = Packet(1.0, Direction.CLIENT_TO_SERVER, other, b"x")
        with pytest.raises(PacketError):
            flow.add(packet)

    def test_client_packets_filtering(self, five_tuple):
        flow = Flow(five_tuple)
        flow.add(Packet(1.0, Direction.CLIENT_TO_SERVER, five_tuple, b"up"))
        flow.add(Packet(2.0, Direction.SERVER_TO_CLIENT, five_tuple, b"down"))
        assert len(flow.client_packets()) == 1
        assert flow.duration_seconds() == pytest.approx(1.0)


class TestFlowTable:
    def test_groups_by_five_tuple(self, five_tuple):
        other = FiveTuple(client=Endpoint("192.168.1.23", 40000), server=Endpoint("203.0.113.5", 443))
        table = FlowTable()
        table.add(Packet(1.0, Direction.CLIENT_TO_SERVER, five_tuple, b"x"))
        table.add(Packet(2.0, Direction.CLIENT_TO_SERVER, other, b"y"))
        table.add(Packet(3.0, Direction.SERVER_TO_CLIENT, five_tuple, b"z" * 100))
        assert len(table) == 2
        assert table.flow_for(five_tuple).packet_count() == 2

    def test_largest_flow_picks_most_downlink_bytes(self, five_tuple):
        other = FiveTuple(client=Endpoint("192.168.1.23", 40000), server=Endpoint("203.0.113.5", 443))
        table = FlowTable()
        table.add(Packet(1.0, Direction.SERVER_TO_CLIENT, five_tuple, b"x" * 5000))
        table.add(Packet(2.0, Direction.SERVER_TO_CLIENT, other, b"y" * 100))
        assert table.largest_flow().five_tuple == five_tuple

    def test_empty_table_rejects_queries(self):
        with pytest.raises(PacketError):
            FlowTable().largest_flow()
