"""Tests for reloading a released dataset from disk."""

from __future__ import annotations

import pytest

from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.loader import load_released_dataset
from repro.exceptions import DatasetError
from repro.streaming.session import SessionConfig


@pytest.fixture(scope="module")
def released(tmp_path_factory):
    """A small dataset generated, saved and reloaded from disk."""
    directory = tmp_path_factory.mktemp("released-dataset")
    dataset = IITMBandersnatchDataset.generate(
        viewer_count=4, seed=55, config=SessionConfig(cross_traffic_enabled=False)
    )
    dataset.save(directory)
    return dataset, directory, load_released_dataset(directory)


class TestLoadReleasedDataset:
    def test_every_viewer_reloaded(self, released):
        dataset, _directory, loaded = released
        assert len(loaded) == len(dataset)
        assert {p.viewer.viewer_id for p in loaded} == {
            p.viewer.viewer_id for p in dataset
        }

    def test_ground_truth_matches_original(self, released):
        dataset, _directory, loaded = released
        for original in dataset:
            reloaded = loaded.viewer(original.viewer.viewer_id)
            assert reloaded.ground_truth_pattern == original.ground_truth_choices
            assert reloaded.selected_labels == original.selected_labels
            assert reloaded.segments == original.session.path.segment_ids
            assert reloaded.choice_count == 10

    def test_traces_are_reparsed_from_pcap_without_labels(self, released):
        _dataset, _directory, loaded = released
        for point in loaded:
            assert point.trace.packet_count > 100
            assert all(not packet.annotations for packet in point.trace.packets)

    def test_attack_runs_on_reloaded_traces(self, released):
        dataset, _directory, loaded = released
        attack = WhiteMirrorAttack(graph=dataset.graph)
        attack.train([point.session for point in dataset])
        correct = 0
        total = 0
        for point in loaded:
            result = attack.attack_trace(
                point.trace, condition_key=point.viewer.condition.fingerprint_key
            )
            total += point.choice_count
            correct += sum(
                1
                for index, actual in enumerate(point.ground_truth_pattern)
                if index < len(result.recovered_pattern)
                and result.recovered_pattern[index] == actual
            )
        # The 4-viewer slice includes the noisy wireless/night environments,
        # where an occasional spurious state-sized telemetry record costs a
        # few choices under strict index alignment; 80 % is the conservative
        # floor for this mix (clean conditions recover 100 %).
        assert correct / total >= 0.8

    def test_by_fingerprint_key(self, released):
        _dataset, _directory, loaded = released
        ubuntu = loaded.by_fingerprint_key("linux/firefox")
        assert ubuntu
        assert all(p.viewer.condition.fingerprint_key == "linux/firefox" for p in ubuntu)

    def test_unknown_viewer_rejected(self, released):
        _dataset, _directory, loaded = released
        with pytest.raises(DatasetError):
            loaded.viewer("viewer-999")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_released_dataset(tmp_path / "nowhere")

    def test_metadata_only_dataset_rejected(self, tmp_path):
        dataset = IITMBandersnatchDataset.generate(
            viewer_count=1, seed=56, config=SessionConfig(cross_traffic_enabled=False)
        )
        dataset.save(tmp_path, write_pcaps=False)
        with pytest.raises(DatasetError):
            load_released_dataset(tmp_path)
