"""Golden tests pinning the CLI's default console rendering byte-for-byte.

The jobs-layer refactor (typed specs -> runner -> event bus -> renderer)
must keep the default terminal output and every written artifact identical
to the pre-refactor CLI.  These tests drive one deterministic end-to-end
workflow — generate (plain and sharded), train (plain and sharded), attack
(single capture and directory), watch --once, stitch, merge-fingerprints,
inspect, reproduce figure1 — and compare each command's stdout against a
checked-in golden file, plus the SHA-256 of every durable artifact.

Regenerating the goldens (only after an *intentional* output change)::

    REPRO_WRITE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_cli_golden.py -q

The comparison is on raw bytes (including the ``\\r`` transient progress
lines), so the files are written and read in binary mode.  Absolute tmp
paths are normalised to ``<ROOT>`` before comparison.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli.main import main

GOLDEN_DIR = Path(__file__).parent / "data" / "cli_golden"
WRITE_GOLDENS = os.environ.get("REPRO_WRITE_GOLDENS") == "1"

#: Scenario names in execution order; each has a golden stdout file.
SCENARIOS = [
    "generate-plain",
    "generate-sharded",
    "train-plain",
    "train-sharded",
    "attack-single",
    "attack-dir",
    "watch-once",
    "stitch",
    "merge-fingerprints",
    "inspect",
    "reproduce-figure1",
]

#: Durable artifacts whose content hashes are pinned (relative to the run
#: root).  The columnar ``records.npz`` sidecars are deliberately absent:
#: they are a pure cache whose compressed bytes may vary across zlib
#: builds, and their *semantic* equivalence is pinned by the sidecar tests.
HASHED_ARTIFACT_GLOBS = [
    "plain/metadata.json",
    "plain/traces/*.pcap",
    "sharded/shards.json",
    "sharded/shard-*/metadata.json",
    "sharded/shard-*/traces/*.pcap",
    "lib-plain.json",
    "lib-sharded.json",
    "state.json",
    "attack.jsonl",
    "watch.jsonl",
    "stitchroot/shards.json",
    "lib-merged.json",
]


def _first_pcap(directory: Path) -> Path:
    pcaps = sorted(directory.glob("*.pcap"))
    assert pcaps, f"no pcaps under {directory}"
    return pcaps[0]


@pytest.fixture(scope="module")
def golden_run(tmp_path_factory) -> tuple[Path, dict[str, str]]:
    """Run the whole scenario chain once; returns (root, stdout-by-name)."""
    root = tmp_path_factory.mktemp("cli-golden")
    outputs: dict[str, str] = {}

    def run(name: str, argv: list[str]) -> None:
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            exit_code = main(argv)
        output = buffer.getvalue()
        assert exit_code == 0, f"{name} exited {exit_code}:\n{output}"
        outputs[name] = output.replace(str(root), "<ROOT>")

    run(
        "generate-plain",
        [
            "generate-dataset", str(root / "plain"),
            "--viewers", "3", "--seed", "5", "--no-cross-traffic",
        ],
    )
    run(
        "generate-sharded",
        [
            "generate-dataset", str(root / "sharded"),
            "--viewers", "4", "--seed", "5", "--shards", "2",
            "--no-cross-traffic",
        ],
    )
    run(
        "train-plain",
        [
            "train", str(root / "plain"), str(root / "lib-plain.json"),
            "--train-fraction", "0.67",
        ],
    )
    run(
        "train-sharded",
        [
            "train", str(root / "sharded"), str(root / "lib-sharded.json"),
            "--sharded", "--save-state", str(root / "state.json"),
        ],
    )
    run(
        "attack-single",
        [
            "attack",
            str(_first_pcap(root / "sharded" / "shard-000" / "traces")),
            str(root / "lib-sharded.json"),
        ],
    )
    run(
        "attack-dir",
        [
            "attack", str(root / "sharded" / "shard-000" / "traces"),
            str(root / "lib-sharded.json"),
            "--results-log", str(root / "attack.jsonl"),
        ],
    )
    drop = root / "drop"
    drop.mkdir()
    shutil.copy(root / "sharded" / "shard-001" / "metadata.json", drop)
    for pcap in sorted((root / "sharded" / "shard-001" / "traces").glob("*.pcap")):
        shutil.copy(pcap, drop)
    run(
        "watch-once",
        [
            "watch", str(drop), "--library", str(root / "lib-sharded.json"),
            "--once", "--results-log", str(root / "watch.jsonl"),
        ],
    )
    stitchroot = root / "stitchroot"
    stitchroot.mkdir()
    for shard in ("shard-000", "shard-001"):
        shutil.copytree(root / "sharded" / shard, stitchroot / shard)
    run("stitch", [str(arg) for arg in ("stitch", stitchroot)])
    run(
        "merge-fingerprints",
        [
            "merge-fingerprints", str(root / "state.json"),
            "-o", str(root / "lib-merged.json"),
        ],
    )
    run(
        "inspect",
        ["inspect", str(_first_pcap(root / "sharded" / "shard-000" / "traces"))],
    )
    run("reproduce-figure1", ["reproduce", "--experiment", "figure1", "--quick"])
    return root, outputs


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_console_output_matches_golden(golden_run, scenario):
    _root, outputs = golden_run
    golden_path = GOLDEN_DIR / f"{scenario}.txt"
    output = outputs[scenario].encode("utf-8")
    if WRITE_GOLDENS:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_bytes(output)
        return
    assert golden_path.exists(), (
        f"missing golden {golden_path}; regenerate with "
        "REPRO_WRITE_GOLDENS=1 (only after an intentional output change)"
    )
    assert output == golden_path.read_bytes(), (
        f"console output drifted for {scenario!r}; if the change is "
        "intentional, regenerate with REPRO_WRITE_GOLDENS=1"
    )


def test_artifact_hashes_match_golden(golden_run):
    """Every durable artifact of the chain is byte-identical to the seed's."""
    root, _outputs = golden_run
    hashes = {}
    for pattern in HASHED_ARTIFACT_GLOBS:
        matches = sorted(root.glob(pattern))
        assert matches, f"artifact glob {pattern!r} matched nothing"
        for path in matches:
            relative = path.relative_to(root).as_posix()
            hashes[relative] = hashlib.sha256(path.read_bytes()).hexdigest()
    golden_path = GOLDEN_DIR / "artifact-hashes.json"
    if WRITE_GOLDENS:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(hashes, indent=2, sort_keys=True) + "\n")
        return
    expected = json.loads(golden_path.read_text())
    assert hashes == expected, (
        "artifact bytes drifted; if intentional, regenerate the goldens "
        "with REPRO_WRITE_GOLDENS=1"
    )
