"""The attack-vs-defense arena: grid, report and byte-identity pins.

The arena's acceptance bar is a single invariant, pinned here four ways:
the published report is byte-identical whether the sweep runs serially,
fanned out across ``--shard-workers``, resumed after a mid-sweep kill
left torn and missing cell files, or leased cell-by-cell through a real
``repro serve --arena`` / ``repro work`` coordinator pair.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.arena import (
    ARENA_SCHEMA_VERSION,
    ArenaGrid,
    ArenaReport,
    cell_to_json,
    parse_component_entry,
    parse_condition_entry,
)
from repro.defenses.registry import DEFENSE_REGISTRY
from repro.exceptions import ComponentError, ConfigurationError, ReproError
from repro.jobs import (
    ArenaCellJob,
    ArenaJob,
    EventBus,
    JobRunner,
    ServeJob,
    WorkJob,
    Workspace,
)

#: One small grid, shared by every byte-identity scenario.
GRID_KWARGS = dict(
    defenses=("pad-to-multiple:block_bytes=64",),
    classifiers=("interval:margin=8",),
    conditions=("linux/desktop/firefox/wired/noon",),
    train_count=1,
    test_count=1,
    seed=11,
)


def _arena_job(output: str, **overrides) -> ArenaJob:
    return ArenaJob(output=output, **{**GRID_KWARGS, **overrides})


def _run(spec) -> None:
    JobRunner(EventBus()).run(spec)


def _synthetic_cell(cell_id: str, overhead: float, accuracy: float) -> dict:
    return {
        "cell": cell_id,
        "classifier": {
            "component": "classifier",
            "name": "knn",
            "params": {"k": 7},
            "schema": 1,
        },
        "classifier_name": "knn(k=7)",
        "condition": "linux/desktop/firefox/wired/noon",
        "defense": None,
        "defense_name": "no defense",
        "metrics": {
            "choice_accuracy": accuracy,
            "record_accuracy": 1.0,
            "overhead_bytes_per_session": overhead,
            "overhead_latency_s_per_session": 0.0,
            "timing_attack_choice_accuracy": 0.5,
            "timing_question_recall": 0.5,
        },
        "schema": ARENA_SCHEMA_VERSION,
        "seed": 0,
        "sessions": {"test": 1, "train": 1},
    }


# -- grid ------------------------------------------------------------------


def test_grid_defaults_sweep_the_standard_suite():
    grid = ArenaGrid.from_axes()
    assert len(grid.defenses) == 5
    assert len(grid.classifiers) == 2
    assert grid.cell_count == (5 + 1) * 2
    assert [cell.cell_id for cell in grid.cells()[:2]] == [
        "cell-0000",
        "cell-0001",
    ]


def test_grid_leads_each_condition_with_the_undefended_baseline():
    grid = ArenaGrid.from_axes(**GRID_KWARGS)
    cells = grid.cells()
    assert cells[0].defense is None
    assert cells[1].defense["name"] == "pad-to-multiple"
    assert all(cell.classifier["name"] == "interval" for cell in cells)


def test_grid_entries_validate_through_the_registries():
    with pytest.raises(ComponentError, match="unknown defense 'nope'"):
        ArenaGrid.from_axes(defenses=("nope",))
    with pytest.raises(ComponentError, match=r"unknown param\(s\) \['kk'\]"):
        ArenaGrid.from_axes(classifiers=("knn:kk=3",))
    with pytest.raises(ComponentError, match="expected name"):
        parse_component_entry("knn:k", DEFENSE_REGISTRY)
    with pytest.raises(ConfigurationError, match="5 '/'-separated"):
        parse_condition_entry("linux/desktop")
    with pytest.raises(ConfigurationError, match="counts must be positive"):
        ArenaGrid.from_axes(train_count=0)


def test_component_entry_values_auto_type():
    spec = parse_component_entry(
        "pad-to-multiple:block_bytes=512", DEFENSE_REGISTRY
    )
    assert spec["params"] == {"block_bytes": 512}


# -- report ----------------------------------------------------------------


def test_report_frontier_keeps_only_non_dominated_cells():
    report = ArenaReport(
        [
            _synthetic_cell("cell-0000", 0.0, 0.9),
            _synthetic_cell("cell-0001", 100.0, 0.5),
            _synthetic_cell("cell-0002", 200.0, 0.5),
        ]
    )
    assert report.frontier == ("cell-0000", "cell-0001")
    rows = report.rows()
    assert [row["pareto"] for row in rows] == ["*", "*", ""]


def test_report_round_trips_through_save_and_load(tmp_path):
    report = ArenaReport(
        [
            _synthetic_cell("cell-0000", 0.0, 0.9),
            _synthetic_cell("cell-0001", 100.0, 0.5),
        ]
    )
    path = report.save(tmp_path / "report.json")
    loaded = ArenaReport.load(path)
    assert loaded.to_dict() == report.to_dict()


def test_report_refuses_an_edited_frontier(tmp_path):
    report = ArenaReport(
        [
            _synthetic_cell("cell-0000", 0.0, 0.9),
            _synthetic_cell("cell-0001", 100.0, 0.5),
        ]
    )
    path = report.save(tmp_path / "report.json")
    data = json.loads(path.read_text())
    data["frontier"] = ["cell-0001"]
    path.write_text(json.dumps(data))
    with pytest.raises(ReproError, match="edited or truncated"):
        ArenaReport.load(path)


def test_report_refuses_unknown_schema_and_empty_cells(tmp_path):
    cell = _synthetic_cell("cell-0000", 0.0, 0.9)
    cell["schema"] = 99
    with pytest.raises(ReproError, match="schema version 99"):
        ArenaReport([cell])
    with pytest.raises(ReproError, match="at least one cell"):
        ArenaReport([])


# -- byte-identity across execution modes ----------------------------------


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    output = tmp_path_factory.mktemp("arena") / "serial"
    _run(_arena_job(str(output)))
    return output


def test_serial_run_publishes_cells_and_report(serial_run):
    report = ArenaReport.load(serial_run / "report.json")
    assert len(report.cells) == 2
    for cell in report.cells:
        recorded = (serial_run / "cells" / f"{cell['cell']}.json").read_text()
        assert recorded == cell_to_json(cell)


def test_shard_workers_run_is_byte_identical(serial_run, tmp_path):
    output = tmp_path / "sharded"
    _run(_arena_job(str(output), shard_workers=2))
    assert (output / "report.json").read_bytes() == (
        serial_run / "report.json"
    ).read_bytes()
    for name in ("cell-0000.json", "cell-0001.json"):
        assert (output / "cells" / name).read_bytes() == (
            serial_run / "cells" / name
        ).read_bytes()


def test_resume_after_torn_and_missing_cells_is_byte_identical(
    serial_run, tmp_path
):
    import shutil

    output = tmp_path / "resumed"
    shutil.copytree(serial_run, output)
    # Simulate a mid-sweep SIGKILL: one cell file torn mid-write, one gone,
    # and the report never written.
    torn = output / "cells" / "cell-0000.json"
    torn.write_text(torn.read_text()[: len(torn.read_text()) // 2])
    (output / "cells" / "cell-0001.json").unlink()
    (output / "report.json").unlink()
    _run(_arena_job(str(output), resume=True))
    assert (output / "report.json").read_bytes() == (
        serial_run / "report.json"
    ).read_bytes()
    for name in ("cell-0000.json", "cell-0001.json"):
        assert (output / "cells" / name).read_bytes() == (
            serial_run / "cells" / name
        ).read_bytes()


def test_resume_rescores_cells_from_a_different_grid(serial_run, tmp_path):
    import shutil

    output = tmp_path / "stale"
    shutil.copytree(serial_run, output)
    # A different seed is a different sweep: resume must not reuse these.
    _run(_arena_job(str(output), resume=True, seed=12))
    fresh = json.loads((output / "cells" / "cell-0000.json").read_text())
    assert fresh["seed"] == 12


def test_leased_through_coordinator_is_byte_identical(serial_run, tmp_path):
    from repro.coordinator.plan import ArenaPlan
    from repro.coordinator.service import Coordinator

    plan = ArenaPlan(
        defenses=GRID_KWARGS["defenses"],
        classifiers=GRID_KWARGS["classifiers"],
        conditions=GRID_KWARGS["conditions"],
        train_count=GRID_KWARGS["train_count"],
        test_count=GRID_KWARGS["test_count"],
        seed=GRID_KWARGS["seed"],
    )
    root = tmp_path / "fleet"
    report_path = tmp_path / "fleet-report.json"
    coordinator = Coordinator(
        plan, EventBus(), root=root, library=report_path, linger=0.0
    )
    coordinator.start()
    host, port = coordinator._host, coordinator._server.server_address[1]
    worker = threading.Thread(
        target=lambda: JobRunner(EventBus()).run(
            WorkJob(url=f"http://{host}:{port}", worker_id="w1", poll_interval=0.05)
        )
    )
    worker.start()
    summary = coordinator.serve_until_complete()
    worker.join()
    assert summary["cells"] == 2
    assert report_path.read_bytes() == (serial_run / "report.json").read_bytes()
    for name in ("cell-0000.json", "cell-0001.json"):
        assert (root / "cells" / name).read_bytes() == (
            serial_run / "cells" / name
        ).read_bytes()


def test_arena_cell_job_writes_the_canonical_bytes(serial_run, tmp_path):
    grid = ArenaGrid.from_axes(**GRID_KWARGS)
    cell = grid.cells()[1]
    runner = JobRunner(EventBus(), workspace=Workspace(tmp_path))
    runner.run(
        ArenaCellJob(
            output="cell.json",
            cell=cell.cell_id,
            condition=cell.condition,
            defense=cell.defense,
            classifier=cell.classifier,
            train_count=grid.train_count,
            test_count=grid.test_count,
            seed=grid.seed,
        )
    )
    assert (tmp_path / "cell.json").read_bytes() == (
        serial_run / "cells" / "cell-0001.json"
    ).read_bytes()


# -- spec validation -------------------------------------------------------


def test_arena_job_validates_its_flags():
    with pytest.raises(ReproError, match="needs --output"):
        ArenaJob().validate()
    with pytest.raises(ReproError, match="at least 1"):
        ArenaJob(output="out", train_count=0).validate()
    with pytest.raises(ReproError, match="--shard-workers"):
        ArenaJob(output="out", shard_workers=0).validate()


def test_arena_cell_job_validates_its_fields():
    with pytest.raises(ReproError, match="cell id"):
        ArenaCellJob(output="cell.json").validate()
    with pytest.raises(ReproError, match="condition"):
        ArenaCellJob(output="cell.json", cell="cell-0000").validate()
    with pytest.raises(ReproError, match="classifier"):
        ArenaCellJob(
            output="cell.json", cell="cell-0000", condition="a/b/c/d/e"
        ).validate()


def test_serve_job_requires_arena_for_sweep_flags():
    with pytest.raises(ReproError, match="combine them with --arena"):
        ServeJob(
            output="root", library="report.json", defenses=("knn:k=3",)
        ).validate()
    ServeJob(output="root", library="report.json", arena=True).validate()
