"""Tests for the script builders."""

from __future__ import annotations

import pytest

from repro.narrative.bandersnatch import (
    BANDERSNATCH_CHOICE_LABELS,
    build_bandersnatch_script,
    build_linear_script,
    build_minimal_interactive_script,
    canonical_question_id,
)
from repro.narrative.path import path_from_choices


class TestBandersnatchScript:
    def test_structure(self):
        graph = build_bandersnatch_script()
        # 1 opening + 2 branches per question.
        assert graph.segment_count == 1 + 2 * len(BANDERSNATCH_CHOICE_LABELS)
        assert graph.root_segment.segment_id == "S0"
        graph.validate()

    def test_every_full_path_answers_every_question(self):
        graph = build_bandersnatch_script()
        path = path_from_choices(graph, [True] * len(BANDERSNATCH_CHOICE_LABELS))
        assert path.choice_count == len(BANDERSNATCH_CHOICE_LABELS)
        canonical = [canonical_question_id(q) for q in path.question_ids()]
        assert canonical == list(BANDERSNATCH_CHOICE_LABELS.keys())

    def test_default_choice_targets_default_branch(self):
        graph = build_bandersnatch_script()
        q1 = graph.choice_point_after("S0")
        assert q1.default_choice.target_segment_id == "S1a"
        assert q1.non_default_choice.target_segment_id == "S1b"

    def test_both_branches_lead_to_the_same_next_question(self):
        graph = build_bandersnatch_script()
        q_from_default = graph.choice_point_after("S1a")
        q_from_alternate = graph.choice_point_after("S1b")
        assert canonical_question_id(q_from_default.question_id) == "Q2"
        assert canonical_question_id(q_from_alternate.question_id) == "Q2"

    def test_endings_have_no_choice_points(self):
        graph = build_bandersnatch_script()
        for segment in graph.ending_segments():
            assert graph.choice_point_after(segment.segment_id) is None

    def test_duration_scales_with_parameters(self):
        short = build_bandersnatch_script(1.0, 1.0, 1.0)
        long = build_bandersnatch_script(10.0, 8.0, 12.0)
        assert long.total_content_seconds() > short.total_content_seconds()

    def test_canonical_question_id(self):
        assert canonical_question_id("Q3@S2b") == "Q3"
        assert canonical_question_id("Q3") == "Q3"


class TestOtherScripts:
    def test_minimal_script_matches_figure1_shape(self):
        graph = build_minimal_interactive_script()
        assert graph.segment_count == 5
        assert graph.root_segment.segment_id == "S0"
        graph.validate()

    def test_linear_script_validates(self):
        graph = build_linear_script(segment_count=4)
        graph.validate()
        assert graph.root_segment.segment_id == "L0"

    def test_linear_script_minimum_size(self):
        with pytest.raises(ValueError):
            build_linear_script(segment_count=1)

    def test_linear_script_smallest_valid(self):
        graph = build_linear_script(segment_count=2)
        graph.validate()
