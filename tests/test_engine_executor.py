"""Engine contract tests: ordering, serial/parallel determinism, failure surfacing."""

from __future__ import annotations

import pickle

import pytest

from repro.core.classifier import MLRecordClassifier
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.collection import collect_dataset
from repro.dataset.population import generate_population
from repro.engine import BatchExecutor, EngineError, RecordCache, SessionPlan
from repro.exceptions import ReproError
from repro.ml.interval import IntervalClassifier
from repro.streaming.session import SessionConfig
from repro.utils.rng import derive_seed


@pytest.fixture(scope="module")
def quick_config() -> SessionConfig:
    return SessionConfig(cross_traffic_enabled=False)


@pytest.fixture(scope="module")
def engine_plans(minimal_graph, ubuntu_condition, default_behavior, quick_config):
    """Four small, independently seeded plans over the minimal script."""
    return [
        SessionPlan(
            graph=minimal_graph,
            condition=ubuntu_condition,
            behavior=default_behavior,
            seed=derive_seed(77, "engine-test", index),
            config=quick_config,
            session_id=f"engine-{index}",
        )
        for index in range(4)
    ]


@pytest.fixture(scope="module")
def serial_results(engine_plans):
    return BatchExecutor().execute(engine_plans)


@pytest.fixture(scope="module")
def parallel_results(engine_plans):
    return BatchExecutor(workers=2).execute(engine_plans)


class TestWorkerResolution:
    def test_none_and_one_are_serial(self):
        assert not BatchExecutor().parallel
        assert not BatchExecutor(workers=1).parallel
        assert BatchExecutor().workers == 1

    def test_zero_means_all_cores(self):
        assert BatchExecutor(workers=0).workers >= 1

    def test_negative_rejected(self):
        with pytest.raises(EngineError, match="non-negative"):
            BatchExecutor(workers=-2)

    def test_engine_error_is_repro_error(self):
        assert issubclass(EngineError, ReproError)


class TestPlanOrderPreservation:
    def test_parallel_results_in_plan_order(self, engine_plans, parallel_results):
        assert [result.session_id for result in parallel_results] == [
            plan.session_id for plan in engine_plans
        ]

    def test_progress_reaches_total(self, engine_plans):
        seen: list[tuple[int, int]] = []
        BatchExecutor(workers=2).execute(
            engine_plans, progress=lambda done, total: seen.append((done, total))
        )
        assert seen[-1] == (len(engine_plans), len(engine_plans))
        assert [done for done, _total in seen] == sorted(done for done, _total in seen)


class TestSerialParallelDeterminism:
    def test_results_byte_identical(self, serial_results, parallel_results):
        assert [r.fingerprint() for r in serial_results] == [
            r.fingerprint() for r in parallel_results
        ]
        assert serial_results == parallel_results

    def test_plan_matches_direct_simulation(self, engine_plans, serial_results):
        # A plan executed anywhere reproduces simulate_session exactly.
        assert engine_plans[0].execute().fingerprint() == serial_results[0].fingerprint()

    def test_headline_parallel_matches_serial(
        self, minimal_graph, ubuntu_condition, windows_condition
    ):
        from repro.experiments.headline import reproduce_headline

        kwargs = dict(
            sessions_per_condition=1,
            training_sessions_per_condition=1,
            conditions=[ubuntu_condition, windows_condition],
            graph=minimal_graph,
        )
        serial = reproduce_headline(**kwargs)
        parallel = reproduce_headline(workers=2, **kwargs)
        assert serial == parallel

    def test_collect_dataset_parallel_matches_serial(self):
        viewers = generate_population(3, seed=5)
        serial = collect_dataset(viewers, dataset_seed=5)
        parallel = collect_dataset(viewers, dataset_seed=5, workers=2)
        assert [p.session.fingerprint() for p in serial] == [
            p.session.fingerprint() for p in parallel
        ]
        assert serial == parallel


class TestFailureSurfacing:
    def test_worker_failure_raises_engine_error(
        self, engine_plans, minimal_graph, ubuntu_condition, default_behavior, quick_config
    ):
        # A negative seed is rejected inside the worker; the batch must fail
        # with one clear engine error naming the plan, not hang.
        bad = SessionPlan(
            graph=minimal_graph,
            condition=ubuntu_condition,
            behavior=default_behavior,
            seed=-1,
            config=quick_config,
            session_id="bad-plan",
        )
        with pytest.raises(EngineError, match="bad-plan"):
            BatchExecutor(workers=2).execute(engine_plans[:1] + [bad])

    def test_serial_failure_raises_engine_error(
        self, minimal_graph, ubuntu_condition, default_behavior, quick_config
    ):
        bad = SessionPlan(
            graph=minimal_graph,
            condition=ubuntu_condition,
            behavior=default_behavior,
            seed=-1,
            config=quick_config,
            session_id="bad-serial",
        )
        with pytest.raises(EngineError, match="bad-serial"):
            BatchExecutor().execute([bad])

    def test_map_wraps_function_errors(self):
        with pytest.raises(EngineError, match="item 0"):
            BatchExecutor().map(_always_fails, [1, 2, 3])


class TestRecordCache:
    def test_one_extraction_serves_train_and_ml_train(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        attack.train_ml_classifier(
            serial_results, MLRecordClassifier(IntervalClassifier(margin=8))
        )
        stats = attack.record_cache.stats
        assert stats.misses == len(serial_results)
        assert stats.hits >= len(serial_results)

    def test_attack_reuses_training_extraction(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        attack.attack_session(serial_results[0])
        assert attack.record_cache.stats.misses == len(serial_results)

    def test_shared_cache_across_attacks(self, minimal_graph, serial_results):
        cache = RecordCache()
        first = WhiteMirrorAttack(graph=minimal_graph, record_cache=cache)
        second = WhiteMirrorAttack(graph=minimal_graph, record_cache=cache)
        first.train(serial_results)
        second.train(serial_results)
        assert cache.stats.misses == len(serial_results)
        assert cache.stats.hits == len(serial_results)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_cache_pickles_empty(self, serial_results):
        cache = RecordCache()
        cache.records_for(serial_results[0].trace, server_ip=serial_results[0].trace.server_ip)
        restored = pickle.loads(pickle.dumps(cache))
        assert len(restored) == 0
        assert restored.stats.misses == 1

    def test_evaluate_sessions_parallel_matches_serial(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        serial = attack.evaluate_sessions(serial_results)
        parallel = attack.evaluate_sessions(serial_results, parallel=True, workers=2)
        assert serial == parallel
        # An explicit worker count enables the pool without the flag.
        assert attack.evaluate_sessions(serial_results, workers=2) == serial

    def test_attack_batch_parallel_matches_serial(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        serial = attack.attack_batch(serial_results)
        parallel = attack.attack_batch(serial_results, workers=2)
        assert serial == parallel


def _always_fails(_item: int) -> None:
    raise ValueError("synthetic failure")
