"""Engine contract tests: ordering, serial/parallel determinism, failure surfacing."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.core.classifier import MLRecordClassifier
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.collection import collect_dataset
from repro.dataset.population import generate_population
from repro.engine import BatchExecutor, EngineError, RecordCache, SessionPlan
from repro.exceptions import ReproError
from repro.ml.interval import IntervalClassifier
from repro.streaming.session import SessionConfig
from repro.utils.rng import derive_seed


@pytest.fixture(scope="module")
def quick_config() -> SessionConfig:
    return SessionConfig(cross_traffic_enabled=False)


@pytest.fixture(scope="module")
def engine_plans(minimal_graph, ubuntu_condition, default_behavior, quick_config):
    """Four small, independently seeded plans over the minimal script."""
    return [
        SessionPlan(
            graph=minimal_graph,
            condition=ubuntu_condition,
            behavior=default_behavior,
            seed=derive_seed(77, "engine-test", index),
            config=quick_config,
            session_id=f"engine-{index}",
        )
        for index in range(4)
    ]


@pytest.fixture(scope="module")
def serial_results(engine_plans):
    return BatchExecutor().execute(engine_plans)


@pytest.fixture(scope="module")
def parallel_results(engine_plans):
    return BatchExecutor(workers=2).execute(engine_plans)


class TestWorkerResolution:
    def test_none_and_one_are_serial(self):
        assert not BatchExecutor().parallel
        assert not BatchExecutor(workers=1).parallel
        assert BatchExecutor().workers == 1

    def test_zero_means_all_cores(self):
        assert BatchExecutor(workers=0).workers >= 1

    def test_negative_rejected(self):
        with pytest.raises(EngineError, match="non-negative"):
            BatchExecutor(workers=-2)

    def test_engine_error_is_repro_error(self):
        assert issubclass(EngineError, ReproError)


class TestPlanOrderPreservation:
    def test_parallel_results_in_plan_order(self, engine_plans, parallel_results):
        assert [result.session_id for result in parallel_results] == [
            plan.session_id for plan in engine_plans
        ]

    def test_progress_reaches_total(self, engine_plans):
        seen: list[tuple[int, int]] = []
        BatchExecutor(workers=2).execute(
            engine_plans, progress=lambda done, total: seen.append((done, total))
        )
        assert seen[-1] == (len(engine_plans), len(engine_plans))
        assert [done for done, _total in seen] == sorted(done for done, _total in seen)

    def test_parallel_progress_reports_completions_as_they_happen(self, tmp_path):
        # Item 0 is slow and touches a sentinel file when it finishes; with
        # two workers the fast items finish first, so the first progress
        # callback must arrive while the sentinel is still absent — the old
        # input-order harvesting stalled every callback behind the slow
        # head-of-line item.  (Sentinel, not wall clock: pool startup time
        # on a loaded machine must not flip the outcome.)
        sentinel = tmp_path / "slow-item-done"
        items = [(1.5, str(sentinel)), (0.0, ""), (0.0, ""), (0.0, "")]
        sentinel_seen_at_callback: list[bool] = []
        results = BatchExecutor(workers=2).map(
            _sleep_then_touch,
            items,
            progress=lambda done, total: sentinel_seen_at_callback.append(
                sentinel.exists()
            ),
        )
        assert results == [seconds for seconds, _path in items]  # input-ordered
        assert len(sentinel_seen_at_callback) == len(items)
        assert sentinel_seen_at_callback[0] is False
        assert sentinel_seen_at_callback[-1] is True


class TestSerialParallelDeterminism:
    def test_results_byte_identical(self, serial_results, parallel_results):
        assert [r.fingerprint() for r in serial_results] == [
            r.fingerprint() for r in parallel_results
        ]
        assert serial_results == parallel_results

    def test_plan_matches_direct_simulation(self, engine_plans, serial_results):
        # A plan executed anywhere reproduces simulate_session exactly.
        assert engine_plans[0].execute().fingerprint() == serial_results[0].fingerprint()

    def test_headline_parallel_matches_serial(
        self, minimal_graph, ubuntu_condition, windows_condition
    ):
        from repro.experiments.headline import reproduce_headline

        kwargs = dict(
            sessions_per_condition=1,
            training_sessions_per_condition=1,
            conditions=[ubuntu_condition, windows_condition],
            graph=minimal_graph,
        )
        serial = reproduce_headline(**kwargs)
        parallel = reproduce_headline(workers=2, **kwargs)
        assert serial == parallel

    def test_collect_dataset_parallel_matches_serial(self):
        viewers = generate_population(3, seed=5)
        serial = collect_dataset(viewers, dataset_seed=5)
        parallel = collect_dataset(viewers, dataset_seed=5, workers=2)
        assert [p.session.fingerprint() for p in serial] == [
            p.session.fingerprint() for p in parallel
        ]
        assert serial == parallel


class TestStreamingImap:
    def test_iexecute_matches_execute_serial_and_parallel(
        self, engine_plans, serial_results
    ):
        streamed_serial = list(BatchExecutor().iexecute(engine_plans))
        streamed_parallel = list(BatchExecutor(workers=2).iexecute(engine_plans))
        assert [r.fingerprint() for r in streamed_serial] == [
            r.fingerprint() for r in serial_results
        ]
        assert streamed_serial == serial_results
        assert streamed_parallel == serial_results

    def test_results_yielded_in_input_order(self, engine_plans):
        streamed = BatchExecutor(workers=2).iexecute(engine_plans)
        assert [result.session_id for result in streamed] == [
            plan.session_id for plan in engine_plans
        ]

    def test_serial_imap_is_lazy(self):
        calls: list[int] = []

        def record(item: int) -> int:
            calls.append(item)
            return item * 2

        iterator = BatchExecutor().imap(record, [1, 2, 3])
        assert calls == []
        assert next(iterator) == 2
        assert calls == [1]
        assert list(iterator) == [4, 6]
        assert calls == [1, 2, 3]

    def test_imap_matches_map(self):
        items = list(range(7))
        serial = BatchExecutor().map(_double, items)
        assert list(BatchExecutor().imap(_double, items)) == serial
        assert list(BatchExecutor(workers=2).imap(_double, items)) == serial

    def test_bounded_window_still_complete_and_ordered(self):
        items = list(range(9))
        streamed = BatchExecutor(workers=2).imap(_double, items, window=2)
        assert list(streamed) == [item * 2 for item in items]

    def test_invalid_window_rejected(self):
        with pytest.raises(EngineError, match="window"):
            list(BatchExecutor(workers=2).imap(_double, [1, 2, 3], window=0))

    def test_imap_progress_reaches_total(self, engine_plans):
        seen: list[tuple[int, int]] = []
        list(
            BatchExecutor(workers=2).iexecute(
                engine_plans, progress=lambda done, total: seen.append((done, total))
            )
        )
        assert seen[-1] == (len(engine_plans), len(engine_plans))
        assert [done for done, _total in seen] == sorted(done for done, _total in seen)

    def test_imap_failure_names_the_item(self):
        with pytest.raises(EngineError, match="item 1"):
            list(BatchExecutor().imap(_fails_on_two, [1, 2, 3]))
        with pytest.raises(EngineError, match="item 1"):
            list(BatchExecutor(workers=2).imap(_fails_on_two, [1, 2, 3]))

    def test_iexecute_failure_names_the_plan(
        self, engine_plans, minimal_graph, ubuntu_condition, default_behavior, quick_config
    ):
        bad = SessionPlan(
            graph=minimal_graph,
            condition=ubuntu_condition,
            behavior=default_behavior,
            seed=-1,
            config=quick_config,
            session_id="bad-stream",
        )
        with pytest.raises(EngineError, match="bad-stream"):
            list(BatchExecutor(workers=2).iexecute(engine_plans[:1] + [bad]))

    def test_abandoning_the_generator_shuts_the_pool_down(self, engine_plans):
        iterator = BatchExecutor(workers=2).iexecute(engine_plans)
        first = next(iterator)
        assert first.session_id == engine_plans[0].session_id
        iterator.close()  # must not hang or leak worker processes


class TestFailureSurfacing:
    def test_worker_failure_raises_engine_error(
        self, engine_plans, minimal_graph, ubuntu_condition, default_behavior, quick_config
    ):
        # A negative seed is rejected inside the worker; the batch must fail
        # with one clear engine error naming the plan, not hang.
        bad = SessionPlan(
            graph=minimal_graph,
            condition=ubuntu_condition,
            behavior=default_behavior,
            seed=-1,
            config=quick_config,
            session_id="bad-plan",
        )
        with pytest.raises(EngineError, match="bad-plan"):
            BatchExecutor(workers=2).execute(engine_plans[:1] + [bad])

    def test_serial_failure_raises_engine_error(
        self, minimal_graph, ubuntu_condition, default_behavior, quick_config
    ):
        bad = SessionPlan(
            graph=minimal_graph,
            condition=ubuntu_condition,
            behavior=default_behavior,
            seed=-1,
            config=quick_config,
            session_id="bad-serial",
        )
        with pytest.raises(EngineError, match="bad-serial"):
            BatchExecutor().execute([bad])

    def test_map_wraps_function_errors(self):
        with pytest.raises(EngineError, match="item 0"):
            BatchExecutor().map(_always_fails, [1, 2, 3])


class TestRecordCache:
    def test_one_extraction_serves_train_and_ml_train(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        attack.train_ml_classifier(
            serial_results, MLRecordClassifier(IntervalClassifier(margin=8))
        )
        stats = attack.record_cache.stats
        assert stats.misses == len(serial_results)
        assert stats.hits >= len(serial_results)

    def test_attack_reuses_training_extraction(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        attack.attack_session(serial_results[0])
        assert attack.record_cache.stats.misses == len(serial_results)

    def test_shared_cache_across_attacks(self, minimal_graph, serial_results):
        cache = RecordCache()
        first = WhiteMirrorAttack(graph=minimal_graph, record_cache=cache)
        second = WhiteMirrorAttack(graph=minimal_graph, record_cache=cache)
        first.train(serial_results)
        second.train(serial_results)
        assert cache.stats.misses == len(serial_results)
        assert cache.stats.hits == len(serial_results)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_cache_pickles_empty(self, serial_results):
        cache = RecordCache()
        cache.records_for(serial_results[0].trace, server_ip=serial_results[0].trace.server_ip)
        restored = pickle.loads(pickle.dumps(cache))
        assert len(restored) == 0
        assert restored.stats.misses == 1

    def test_evaluate_sessions_parallel_matches_serial(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        serial = attack.evaluate_sessions(serial_results)
        parallel = attack.evaluate_sessions(serial_results, parallel=True, workers=2)
        assert serial == parallel
        # An explicit worker count enables the pool without the flag.
        assert attack.evaluate_sessions(serial_results, workers=2) == serial

    def test_attack_batch_parallel_matches_serial(self, minimal_graph, serial_results):
        attack = WhiteMirrorAttack(graph=minimal_graph)
        attack.train(serial_results)
        serial = attack.attack_batch(serial_results)
        parallel = attack.attack_batch(serial_results, workers=2)
        assert serial == parallel


def _always_fails(_item: int) -> None:
    raise ValueError("synthetic failure")


def _double(item: int) -> int:
    return item * 2


def _fails_on_two(item: int) -> int:
    if item == 2:
        raise ValueError("synthetic failure on 2")
    return item


def _sleep_then_touch(item: tuple[float, str]) -> float:
    seconds, path = item
    time.sleep(seconds)
    if path:
        with open(path, "w", encoding="utf-8"):
            pass
    return seconds


class TestLazyIterableImap:
    """``imap`` consumes arbitrary iterables lazily — the live-ingest shape."""

    def test_generator_input_matches_list_input(self):
        items = list(range(9))
        expected = [item * 2 for item in items]
        assert list(BatchExecutor().imap(_double, iter(items))) == expected
        assert list(BatchExecutor(workers=2).imap(_double, iter(items))) == expected

    def test_unsized_input_reports_total_none(self):
        totals: list[object] = []
        list(
            BatchExecutor(workers=2).imap(
                _double, iter(range(4)), progress=lambda done, total: totals.append(total)
            )
        )
        assert totals == [None] * 4
        totals.clear()
        list(
            BatchExecutor(workers=2).imap(
                _double, list(range(4)), progress=lambda done, total: totals.append(total)
            )
        )
        assert totals == [4] * 4

    def test_empty_lazy_input_yields_nothing(self):
        assert list(BatchExecutor().imap(_double, iter(()))) == []
        assert list(BatchExecutor(workers=2).imap(_double, iter(()))) == []

    def test_parallel_pull_ahead_is_bounded_by_the_window(self):
        pulled: list[int] = []

        def source():
            for item in range(20):
                pulled.append(item)
                yield item

        iterator = BatchExecutor(workers=2).imap(_double, source(), window=3)
        first = next(iterator)
        assert first == 0
        # After one yield the producer has been asked for at most the
        # window plus the slot freed by the yield — never the whole input.
        assert len(pulled) <= 5
        assert list(iterator) == [item * 2 for item in range(1, 20)]
        assert pulled == list(range(20))

    def test_serial_lazy_input_interleaves_pull_and_apply(self):
        events: list[str] = []

        def source():
            for item in range(3):
                events.append(f"pull-{item}")
                yield item

        def apply(item: int) -> int:
            events.append(f"apply-{item}")
            return item

        assert list(BatchExecutor().imap(apply, source())) == [0, 1, 2]
        assert events == [
            "pull-0", "apply-0", "pull-1", "apply-1", "pull-2", "apply-2",
        ]

    def test_failure_in_lazy_input_names_the_item(self):
        with pytest.raises(EngineError, match="item 1"):
            list(BatchExecutor(workers=2).imap(_fails_on_two, iter([1, 2, 3])))
