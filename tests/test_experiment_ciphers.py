"""Tests for the cipher-suite robustness ablation and the session cipher plumbing."""

from __future__ import annotations

import pytest

from repro.core.features import LABEL_TYPE1, extract_client_records
from repro.exceptions import AttackError, StreamingError
from repro.experiments.ablation_ciphers import (
    ABLATION_CIPHER_SUITES,
    reproduce_cipher_ablation,
)
from repro.streaming.session import SessionConfig, simulate_session


class TestSessionCipherPlumbing:
    def test_invalid_suite_rejected_at_configuration(self):
        with pytest.raises(Exception):
            SessionConfig(cipher_suite="TLS_NULL_WITH_NULL_NULL")

    def test_chacha_shifts_record_lengths_by_overhead_delta(
        self, study_graph, ubuntu_condition, default_behavior
    ):
        gcm = simulate_session(
            study_graph,
            ubuntu_condition,
            default_behavior,
            seed=61,
            config=SessionConfig(cross_traffic_enabled=False),
        )
        chacha = simulate_session(
            study_graph,
            ubuntu_condition,
            default_behavior,
            seed=61,
            config=SessionConfig(
                cross_traffic_enabled=False,
                cipher_suite="TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
            ),
        )
        gcm_type1 = [
            r.wire_length
            for r in extract_client_records(gcm.trace, server_ip=gcm.trace.server_ip)
            if r.label == LABEL_TYPE1
        ]
        chacha_type1 = [
            r.wire_length
            for r in extract_client_records(chacha.trace, server_ip=chacha.trace.server_ip)
            if r.label == LABEL_TYPE1
        ]
        # AES-GCM (TLS 1.2) adds 24 bytes, ChaCha20-Poly1305 adds 16: the same
        # payloads must appear exactly 8 bytes shorter on the wire.
        assert sorted(gcm_type1) == sorted(length + 8 for length in chacha_type1)


class TestCipherAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return reproduce_cipher_ablation(sessions_per_suite=1, training_sessions=2, seed=9)

    def test_all_suites_scored(self, result):
        assert {score.cipher_suite for score in result.scores} == set(ABLATION_CIPHER_SUITES)
        assert len(result.rows()) == len(ABLATION_CIPHER_SUITES)

    def test_aead_suites_survive_gcm_trained_fingerprint(self, result):
        assert result.aead_suites_survive_without_retraining

    def test_cbc_defeats_the_non_adaptive_attacker(self, result):
        assert result.cbc_breaks_without_retraining

    def test_adaptive_attacker_recovers_every_suite(self, result):
        assert result.adaptive_attacker_always_wins

    def test_unknown_suite_lookup_raises(self, result):
        with pytest.raises(AttackError):
            result.score_for("TLS_FANCY_SUITE")

    def test_invalid_counts_rejected(self):
        with pytest.raises(AttackError):
            reproduce_cipher_ablation(sessions_per_suite=0)
