"""Tests for the from-scratch classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MLError, NotFittedError
from repro.ml.interval import IntervalClassifier
from repro.ml.knn import KNearestNeighbors
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import spawn_rng


def _three_band_data(samples_per_class: int = 60, seed: int = 0):
    """Synthetic record-length-like data: three well-separated bands."""
    rng = spawn_rng(seed, "ml-test")
    lengths = np.concatenate(
        [
            rng.integers(2211, 2214, samples_per_class),
            rng.integers(2992, 3018, samples_per_class),
            rng.integers(500, 1500, samples_per_class),
        ]
    ).astype(float)
    labels = np.asarray(
        ["type1"] * samples_per_class + ["type2"] * samples_per_class + ["other"] * samples_per_class,
        dtype=object,
    )
    order = rng.permutation(lengths.size)
    return lengths[order].reshape(-1, 1), labels[order]


ALL_CLASSIFIERS = [
    lambda: IntervalClassifier(margin=1),
    lambda: KNearestNeighbors(k=5),
    lambda: GaussianNaiveBayes(),
    lambda: DecisionTreeClassifier(max_depth=6),
    lambda: LogisticRegressionClassifier(iterations=300),
]


class TestAllClassifiersOnBandData:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_high_accuracy_on_separable_bands(self, factory):
        features, labels = _three_band_data()
        classifier = factory().fit(features, labels)
        assert classifier.score(features, labels) >= 0.95

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_generalises_to_fresh_samples(self, factory):
        train_features, train_labels = _three_band_data(seed=1)
        test_features, test_labels = _three_band_data(seed=2)
        classifier = factory().fit(train_features, train_labels)
        assert classifier.score(test_features, test_labels) >= 0.9

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_predict_before_fit_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict([[1.0]])


class TestIntervalClassifier:
    def test_learned_intervals_cover_training_range(self):
        features, labels = _three_band_data()
        classifier = IntervalClassifier(margin=2).fit(features, labels)
        low, high = classifier.intervals["type1"]
        assert low <= 2211 and high >= 2213

    def test_prefers_narrowest_containing_interval(self):
        features = np.asarray([[10.0], [11.0], [12.0], [5.0], [30.0], [10.5]])
        labels = ["narrow", "narrow", "narrow", "wide", "wide", "wide"]
        classifier = IntervalClassifier().fit(features, labels)
        assert classifier.predict([[11.0]])[0] == "narrow"

    def test_fallback_for_out_of_band_values(self):
        features, labels = _three_band_data()
        classifier = IntervalClassifier(fallback_label="other").fit(features, labels)
        assert classifier.predict([[9999.0]])[0] == "other"

    def test_rejects_multi_feature_input(self):
        with pytest.raises(MLError):
            IntervalClassifier().fit(np.ones((4, 2)), ["a", "a", "b", "b"])

    def test_negative_margin_rejected(self):
        with pytest.raises(MLError):
            IntervalClassifier(margin=-1)


class TestKNN:
    def test_k_of_one_memorises(self):
        features = np.asarray([[0.0], [10.0], [20.0]])
        labels = ["a", "b", "c"]
        classifier = KNearestNeighbors(k=1).fit(features, labels)
        assert list(classifier.predict(features)) == labels

    def test_dimensionality_mismatch_rejected(self):
        classifier = KNearestNeighbors(k=1).fit(np.ones((3, 2)), ["a", "b", "c"])
        with pytest.raises(MLError):
            classifier.predict(np.ones((2, 3)))

    def test_invalid_k_rejected(self):
        with pytest.raises(MLError):
            KNearestNeighbors(k=0)


class TestNaiveBayes:
    def test_log_proba_shape(self):
        features, labels = _three_band_data()
        model = GaussianNaiveBayes().fit(features, labels)
        log_proba = model.predict_log_proba(features[:7])
        assert log_proba.shape == (7, 3)


class TestDecisionTree:
    def test_depth_limited(self):
        features, labels = _three_band_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.depth() <= 2

    def test_pure_leaf_short_circuit(self):
        tree = DecisionTreeClassifier().fit(np.asarray([[1.0], [2.0]]), ["x", "x"])
        assert tree.depth() == 0
        assert tree.predict([[5.0]])[0] == "x"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(MLError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(MLError):
            DecisionTreeClassifier(min_samples_split=1)


class TestLogisticRegression:
    def test_probabilities_sum_to_one(self):
        features, labels = _three_band_data()
        model = LogisticRegressionClassifier(iterations=200).fit(features, labels)
        probabilities = model.predict_proba(features[:5])
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert probabilities.shape == (5, len(model.classes_))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(MLError):
            LogisticRegressionClassifier(learning_rate=0)
        with pytest.raises(MLError):
            LogisticRegressionClassifier(iterations=0)
        with pytest.raises(MLError):
            LogisticRegressionClassifier(l2=-1)
