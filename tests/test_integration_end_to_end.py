"""End-to-end integration tests across the whole pipeline.

These tests tie every subsystem together the way the examples do: generate a
small dataset, persist it, reload the victim traces from pcap only, train the
attack on the labelled half, attack the reloaded half, and check that the
recovered choices and behavioural profiles line up with ground truth.
"""

from __future__ import annotations

import pytest

from repro.core.evaluation import (
    aggregate_choice_accuracy,
    aggregate_json_identification_accuracy,
)
from repro.core.pipeline import WhiteMirrorAttack
from repro.core.profiling import profile_from_path
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.net.capture import CapturedTrace
from repro.streaming.session import SessionConfig


@pytest.fixture(scope="module")
def dataset():
    return IITMBandersnatchDataset.generate(
        viewer_count=8,
        seed=77,
        config=SessionConfig(cross_traffic_enabled=True),
    )


class TestDatasetToAttack:
    def test_attack_on_held_out_viewers(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.4)
        attack = WhiteMirrorAttack(graph=dataset.graph)
        attack.train([point.session for point in train])
        evaluations = attack.evaluate_sessions([point.session for point in test])
        assert aggregate_json_identification_accuracy(evaluations) >= 0.9
        assert aggregate_choice_accuracy(evaluations) >= 0.8

    def test_attack_from_released_artifacts_only(self, tmp_path, dataset):
        """Train on in-memory sessions, attack traces reloaded from disk."""
        train, test = dataset.train_test_split(test_fraction=0.4)
        directory = tmp_path / "released"
        dataset.save(directory)
        attack = WhiteMirrorAttack(graph=dataset.graph)
        attack.train([point.session for point in train])

        correct = 0
        total = 0
        for point in test:
            pcap_path = directory / "traces" / f"{point.viewer.viewer_id}.pcap"
            trace = CapturedTrace.from_pcap(
                pcap_path,
                client_ip=point.session.trace.client_ip,
                server_ip=point.session.trace.server_ip,
            )
            result = attack.attack_trace(
                trace, condition_key=point.viewer.condition.fingerprint_key
            )
            truth = point.ground_truth_choices
            recovered = result.recovered_pattern
            total += len(truth)
            correct += sum(
                1
                for index, value in enumerate(truth)
                if index < len(recovered) and recovered[index] == value
            )
        assert total > 0
        assert correct / total >= 0.8

    def test_behavioral_profile_recovery(self, dataset):
        train, test = dataset.train_test_split(test_fraction=0.4)
        attack = WhiteMirrorAttack(graph=dataset.graph)
        attack.train([point.session for point in train])
        for point in test:
            result = attack.attack_session(point.session)
            assert result.profile is not None
            truth_profile = profile_from_path(point.session.path)
            recovered_traits = result.profile.as_dict()
            truth_traits = truth_profile.as_dict()
            matches = sum(
                1 for trait, label in truth_traits.items() if recovered_traits.get(trait) == label
            )
            assert matches / len(truth_traits) >= 0.6

    def test_fingerprint_library_round_trip_through_disk(self, tmp_path, dataset):
        train, _ = dataset.train_test_split(test_fraction=0.4)
        attack = WhiteMirrorAttack(graph=dataset.graph)
        attack.train([point.session for point in train])
        path = tmp_path / "fingerprints.json"
        attack.library.save(path)

        from repro.core.fingerprint import FingerprintLibrary

        restored = FingerprintLibrary.load(path)
        assert set(restored.condition_keys) == set(attack.library.condition_keys)

    def test_cross_environment_fingerprints_do_not_transfer(self, dataset):
        """A fingerprint trained for Windows misses Ubuntu state reports.

        This is the reason the attack needs per-environment calibration
        (Figure 2 shows different bands per OS)."""
        ubuntu_points = dataset.by_fingerprint_key("linux/firefox")
        windows_points = dataset.by_fingerprint_key("windows/firefox")
        if not ubuntu_points or not windows_points:
            pytest.skip("dataset slice does not cover both Figure 2 environments")
        attack = WhiteMirrorAttack(graph=dataset.graph)
        attack.train([point.session for point in windows_points])
        windows_fingerprint = attack.library.get("windows/firefox")
        from repro.core.features import extract_client_records, LABEL_TYPE1

        ubuntu_records = extract_client_records(
            ubuntu_points[0].session.trace,
            server_ip=ubuntu_points[0].session.trace.server_ip,
        )
        predicted = windows_fingerprint.classify(ubuntu_records)
        true_type1 = [
            prediction
            for record, prediction in zip(ubuntu_records, predicted)
            if record.label == LABEL_TYPE1
        ]
        assert true_type1.count(LABEL_TYPE1) == 0
