"""Resumable shard generation and incremental shard-by-shard training.

The contract under test is the roadmap's checkpointing story: a crashed
sharded generation run leaves each shard either complete or detectably
partial, ``resume=True`` finishes exactly the missing work, and the resumed
directory is byte-identical to an uninterrupted run; training folds the same
shards in one at a time and finalises into exactly the batch fingerprints.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.fingerprint import (
    FingerprintAccumulator,
    FingerprintLibrary,
    RecordLengthFingerprint,
)
from repro.core.features import ClientRecord, LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.format import (
    DatasetWriter,
    INPROGRESS_FILENAME,
    dataset_is_complete,
    dataset_is_partial,
    snapshot_dataset_files,
)
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.shards import (
    SHARD_GENERATED,
    SHARD_QUARANTINED,
    SHARD_SKIPPED,
    ShardedDataset,
    generate_sharded_dataset,
    quarantine_partial_shard,
    shard_summary_from_metadata,
)
from repro.exceptions import AttackError, DatasetError, FingerprintError
from repro.experiments.headline import reproduce_headline_from_dataset
from repro.streaming.session import SessionConfig

SEED = 23
VIEWERS = 6
SHARDS = 3
CONFIG = SessionConfig(cross_traffic_enabled=False)


def _generate(directory: Path, resume: bool = False, status=None) -> ShardedDataset:
    return generate_sharded_dataset(
        directory,
        viewer_count=VIEWERS,
        shard_count=SHARDS,
        seed=SEED,
        config=CONFIG,
        resume=resume,
        status=status,
    )


#: Quarantine debris excluded, exactly the comparison the contract needs.
_dataset_files = snapshot_dataset_files


@pytest.fixture(scope="module")
def fresh(tmp_path_factory) -> ShardedDataset:
    """The reference: one uninterrupted sharded generation run."""
    return _generate(tmp_path_factory.mktemp("fresh") / "dataset")


class TestWriterMarker:
    def test_marker_lives_exactly_as_long_as_the_write(
        self, tmp_path, minimal_session
    ):
        from repro.dataset.collection import DataPoint
        from repro.dataset.population import Viewer
        from repro.client.profiles import OperationalCondition
        from repro.client.viewer import ViewerBehavior

        viewer = Viewer(
            viewer_id="viewer-000",
            condition=minimal_session.condition,
            behavior=ViewerBehavior("20-25", "undisclosed", "undisclosed", "happy"),
        )
        point = DataPoint(viewer=viewer, session=minimal_session)
        writer = DatasetWriter(tmp_path, seed=1)
        assert (tmp_path / INPROGRESS_FILENAME).exists()
        assert dataset_is_partial(tmp_path)
        writer.add(point)
        writer.close()
        assert not (tmp_path / INPROGRESS_FILENAME).exists()
        assert dataset_is_complete(tmp_path)
        # Atomic publish: no staging file left behind.
        assert not (tmp_path / "metadata.json.tmp").exists()

    def test_error_exit_leaves_the_marker(self, tmp_path):
        with pytest.raises(RuntimeError):
            with DatasetWriter(tmp_path / "broken"):
                raise RuntimeError("simulated crash")
        assert dataset_is_partial(tmp_path / "broken")
        assert not (tmp_path / "broken" / "metadata.json").exists()

    def test_completeness_helpers_on_missing_directory(self, tmp_path):
        assert not dataset_is_complete(tmp_path / "nowhere")
        assert not dataset_is_partial(tmp_path / "nowhere")

    def test_invalid_recorded_session_config_raises_dataset_error(self):
        from repro.dataset.format import session_config_from_metadata

        assert session_config_from_metadata({}) is None
        # Unknown keys and out-of-range values must both surface as a
        # DatasetError naming the metadata, never a bare constructor error.
        with pytest.raises(DatasetError, match="session_config"):
            session_config_from_metadata({"session_config": {"bogus_key": 1}})
        with pytest.raises(DatasetError, match="session_config"):
            session_config_from_metadata({"session_config": {"media_scale": 0.0}})


class TestResumeGeneration:
    def test_resume_of_complete_run_skips_every_shard(self, tmp_path, fresh):
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        events: list[tuple[str, str]] = []
        resumed = _generate(
            copy, resume=True, status=lambda s, state: events.append((s.dirname, state))
        )
        assert [state for _name, state in events] == [SHARD_SKIPPED] * SHARDS
        assert resumed.summary() == fresh.summary()
        assert _dataset_files(copy) == _dataset_files(fresh.directory)

    def test_kill_and_resume_is_byte_identical_to_uninterrupted(self, tmp_path, fresh):
        # Crash the run mid-way through the second shard: the progress
        # callback is invoked per completed session, so raising from it is an
        # arbitrary-point interruption with the writer mid-shard.
        interrupted = tmp_path / "dataset"

        class SimulatedCrash(Exception):
            pass

        def crash_after(done: int, _total: int) -> None:
            if done >= VIEWERS // 2 + 1:
                raise SimulatedCrash

        with pytest.raises(SimulatedCrash):
            generate_sharded_dataset(
                interrupted,
                viewer_count=VIEWERS,
                shard_count=SHARDS,
                seed=SEED,
                config=CONFIG,
                progress=crash_after,
            )
        # The first shard finalised; the in-flight one is detectably partial.
        assert dataset_is_complete(interrupted / "shard-000")
        assert dataset_is_partial(interrupted / "shard-001")
        assert not (interrupted / "shards.json").exists()

        events: list[tuple[str, str]] = []
        resumed = _generate(
            interrupted,
            resume=True,
            status=lambda s, state: events.append((s.dirname, state)),
        )
        assert ("shard-000", SHARD_SKIPPED) in events
        assert ("shard-001", SHARD_QUARANTINED) in events
        assert ("shard-001", SHARD_GENERATED) in events
        assert ("shard-002", SHARD_GENERATED) in events
        # The quarantined debris was moved aside, not destroyed.
        assert (interrupted / "shard-001.quarantined-000").exists()
        # Every dataset file — pcaps, per-shard metadata, the shards manifest
        # — is byte-identical to the uninterrupted run.
        assert _dataset_files(interrupted) == _dataset_files(fresh.directory)
        assert resumed.summary() == fresh.summary()

    def test_resume_skips_completed_shards_without_rewriting(self, tmp_path, fresh):
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        (copy / "shard-002" / "metadata.json").unlink()
        untouched = copy / "shard-000" / "metadata.json"
        stamp_before = untouched.stat().st_mtime_ns
        _generate(copy, resume=True)
        assert untouched.stat().st_mtime_ns == stamp_before
        assert _dataset_files(copy) == _dataset_files(fresh.directory)

    def test_resume_quarantines_a_foreign_seed_shard(self, tmp_path, fresh):
        # A complete shard from a *different* run must not be absorbed.
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        metadata_path = copy / "shard-001" / "metadata.json"
        metadata = json.loads(metadata_path.read_text())
        metadata["seed"] = SEED + 1
        metadata_path.write_text(json.dumps(metadata, indent=2))
        events: list[tuple[str, str]] = []
        _generate(
            copy, resume=True, status=lambda s, state: events.append((s.dirname, state))
        )
        assert ("shard-001", SHARD_QUARANTINED) in events
        assert _dataset_files(copy) == _dataset_files(fresh.directory)

    def test_resume_regenerates_on_write_pcaps_mismatch(self, tmp_path, fresh):
        # A shard completed with pcaps must not be absorbed by a --no-pcaps
        # resume (and vice versa): the flag mismatch is detected from the
        # metadata entries and the shard regenerated under the new flags.
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        events: list[tuple[str, str]] = []
        resumed = generate_sharded_dataset(
            copy,
            viewer_count=VIEWERS,
            shard_count=SHARDS,
            seed=SEED,
            config=CONFIG,
            write_pcaps=False,
            resume=True,
            status=lambda s, state: events.append((s.dirname, state)),
        )
        assert [state for _name, state in events].count(SHARD_SKIPPED) == 0
        assert [state for _name, state in events].count(SHARD_QUARANTINED) == SHARDS
        assert resumed.summary() == fresh.summary()
        metadata = json.loads((copy / "shard-000" / "metadata.json").read_text())
        assert all("trace_file" not in entry for entry in metadata["entries"])

    def test_resume_regenerates_a_shard_with_a_deleted_pcap(self, tmp_path, fresh):
        # A metadata index can survive while a trace file is lost; the shard
        # must not be skipped as "complete" with a hole in its traces.
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        victim = next((copy / "shard-001" / "traces").glob("*.pcap"))
        victim.unlink()
        events: list[tuple[str, str]] = []
        _generate(
            copy, resume=True, status=lambda s, state: events.append((s.dirname, state))
        )
        assert ("shard-001", SHARD_QUARANTINED) in events
        assert ("shard-000", SHARD_SKIPPED) in events
        assert _dataset_files(copy) == _dataset_files(fresh.directory)

    def test_resume_regenerates_on_dataset_name_mismatch(self, tmp_path, fresh):
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        events: list[tuple[str, str]] = []
        renamed = generate_sharded_dataset(
            copy,
            viewer_count=VIEWERS,
            shard_count=SHARDS,
            seed=SEED,
            config=CONFIG,
            dataset_name="another-study",
            resume=True,
            status=lambda s, state: events.append((s.dirname, state)),
        )
        assert [state for _name, state in events].count(SHARD_SKIPPED) == 0
        metadata = json.loads((copy / "shard-000" / "metadata.json").read_text())
        assert metadata["name"] == "another-study"
        assert renamed.summary() == fresh.summary()

    def test_resume_regenerates_on_session_config_mismatch(self, tmp_path, fresh):
        # The generating SessionConfig is recorded in each shard's metadata,
        # so resuming with different session parameters (here: cross traffic
        # enabled) must regenerate rather than absorb the old shards.
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        events: list[tuple[str, str]] = []
        generate_sharded_dataset(
            copy,
            viewer_count=VIEWERS,
            shard_count=SHARDS,
            seed=SEED,
            config=SessionConfig(cross_traffic_enabled=True),
            resume=True,
            status=lambda s, state: events.append((s.dirname, state)),
        )
        assert [state for _name, state in events].count(SHARD_SKIPPED) == 0
        assert [state for _name, state in events].count(SHARD_QUARANTINED) == SHARDS

    def test_resume_regenerates_on_graph_mismatch(self, tmp_path, fresh):
        # The generating script's fingerprint is recorded per shard, so a
        # resume with a different story graph regenerates everything.
        from repro.narrative.bandersnatch import build_bandersnatch_script

        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        other_graph = build_bandersnatch_script(
            trunk_segment_minutes=2.0, branch_segment_minutes=1.0, ending_minutes=2.0
        )
        events: list[tuple[str, str]] = []
        generate_sharded_dataset(
            copy,
            viewer_count=VIEWERS,
            shard_count=SHARDS,
            seed=SEED,
            graph=other_graph,
            config=CONFIG,
            resume=True,
            status=lambda s, state: events.append((s.dirname, state)),
        )
        assert [state for _name, state in events].count(SHARD_SKIPPED) == 0

    def test_resimulation_rejects_a_different_graph(self, fresh):
        from repro.dataset.shards import iter_shard_training_sessions
        from repro.narrative.bandersnatch import build_bandersnatch_script

        other_graph = build_bandersnatch_script(
            trunk_segment_minutes=2.0, branch_segment_minutes=1.0, ending_minutes=2.0
        )
        with pytest.raises(DatasetError, match="different story graph"):
            next(
                iter_shard_training_sessions(
                    fresh.directory / "shard-000", graph=other_graph
                )
            )

    def test_graph_fingerprint_is_stable_and_structure_sensitive(self):
        from repro.narrative.bandersnatch import build_bandersnatch_script

        build = lambda minutes: build_bandersnatch_script(  # noqa: E731
            trunk_segment_minutes=minutes,
            branch_segment_minutes=1.0,
            ending_minutes=2.0,
        )
        assert build(1.5).fingerprint() == build(1.5).fingerprint()
        assert build(1.5).fingerprint() != build(2.0).fingerprint()

    def test_resimulated_sessions_match_stored_pcaps(self, tmp_path, fresh):
        # Re-simulation reads the recorded session config from the metadata,
        # so the replayed sessions reproduce the stored pcaps byte for byte
        # even though the dataset was generated under a non-default config.
        from repro.dataset.shards import iter_shard_training_sessions

        shard_directory = fresh.directory / "shard-000"
        stored = sorted((shard_directory / "traces").glob("*.pcap"))
        sessions = list(iter_shard_training_sessions(shard_directory))
        assert len(sessions) == len(stored)
        for session, pcap in zip(sessions, stored):
            replayed = tmp_path / pcap.name
            session.trace.to_pcap(replayed)
            assert replayed.read_bytes() == pcap.read_bytes()

    def test_orphan_shards_beyond_the_plan_are_quarantined(self, tmp_path, fresh):
        # Resuming a 3-shard directory as a 2-shard run must not leave the
        # old third shard sitting around looking like valid data.
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        resumed = generate_sharded_dataset(
            copy,
            viewer_count=VIEWERS,
            shard_count=SHARDS - 1,
            seed=SEED,
            config=CONFIG,
            resume=True,
        )
        assert resumed.shard_count == SHARDS - 1
        assert not (copy / f"shard-{SHARDS - 1:03d}").exists()
        assert (copy / f"shard-{SHARDS - 1:03d}.quarantined-000").exists()
        # The re-partitioned shards hold the whole population again.
        assert resumed.summary() == fresh.summary()

    def test_quarantine_names_do_not_collide(self, tmp_path):
        for _attempt in range(3):
            victim = tmp_path / "shard-000"
            victim.mkdir()
            (victim / "debris").write_text("x")
            quarantine_partial_shard(victim)
        names = sorted(path.name for path in tmp_path.iterdir())
        assert names == [
            "shard-000.quarantined-000",
            "shard-000.quarantined-001",
            "shard-000.quarantined-002",
        ]
        with pytest.raises(DatasetError):
            quarantine_partial_shard(tmp_path / "shard-000")

    def test_shard_summary_recomputed_from_metadata_matches_manifest(self, fresh):
        for summary in fresh.shard_summaries:
            recomputed = shard_summary_from_metadata(
                fresh.directory / summary.directory, summary.index
            )
            assert recomputed == summary


class TestLoadHardening:
    def test_single_dataset_directory_is_named_as_such(self, tmp_path):
        IITMBandersnatchDataset.generate(
            viewer_count=1, seed=SEED, config=CONFIG
        ).save(tmp_path / "single")
        with pytest.raises(DatasetError, match="non-sharded"):
            ShardedDataset.load(tmp_path / "single")

    def test_arbitrary_directory_is_rejected_with_guidance(self, tmp_path):
        with pytest.raises(DatasetError, match="generate-dataset --shards"):
            ShardedDataset.load(tmp_path)

    def test_incomplete_shard_is_reported_with_the_repair_command(
        self, tmp_path, fresh
    ):
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        (copy / "shard-001" / INPROGRESS_FILENAME).touch()
        with pytest.raises(DatasetError, match="--resume"):
            ShardedDataset.load(copy)

    def test_missing_shard_directory_is_reported(self, tmp_path, fresh):
        import shutil

        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        shutil.rmtree(copy / "shard-002")
        with pytest.raises(DatasetError, match="missing"):
            ShardedDataset.load(copy)

    def test_mixed_generation_runs_are_rejected(self, tmp_path, fresh):
        # A shard whose metadata records a different seed than the manifest
        # (debris of a crashed re-run with new parameters) must not load.
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        metadata_path = copy / "shard-001" / "metadata.json"
        metadata = json.loads(metadata_path.read_text())
        metadata["seed"] = SEED + 1
        metadata_path.write_text(json.dumps(metadata))
        with pytest.raises(DatasetError, match="mixed generation runs"):
            ShardedDataset.load(copy)

    def test_crashed_rerun_leaves_no_stale_manifest(self, tmp_path, fresh):
        # Re-running an existing dataset directory with new parameters and
        # crashing immediately must invalidate the old manifest rather than
        # leave it pointing at a mixture of old and new shards.
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)

        class SimulatedCrash(Exception):
            pass

        def crash_immediately(_done: int, _total: int) -> None:
            raise SimulatedCrash

        with pytest.raises(SimulatedCrash):
            generate_sharded_dataset(
                copy,
                viewer_count=VIEWERS,
                shard_count=SHARDS,
                seed=SEED + 1,
                config=CONFIG,
                progress=crash_immediately,
            )
        assert not (copy / "shards.json").exists()
        with pytest.raises(DatasetError, match="not a sharded dataset"):
            ShardedDataset.load(copy)

    def test_malformed_manifest_entry_raises_dataset_error(self, tmp_path, fresh):
        copy = tmp_path / "dataset"
        _copy_dataset(fresh.directory, copy)
        manifest = json.loads((copy / "shards.json").read_text())
        del manifest["shards"][0]["viewer_count"]
        (copy / "shards.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="malformed"):
            ShardedDataset.load(copy)


def _record(length: int, label: str | None) -> ClientRecord:
    return ClientRecord(timestamp=0.0, wire_length=length, content_type=23, label=label)


class TestFingerprintAccumulator:
    def test_folding_matches_batch_learning(self):
        records = [
            _record(2200, LABEL_TYPE1),
            _record(2210, LABEL_TYPE1),
            _record(3000, LABEL_TYPE2),
            _record(3050, LABEL_TYPE2),
            _record(400, LABEL_OTHER),
            _record(500, None),
        ]
        batch = RecordLengthFingerprint.learn("linux/firefox", records, margin=8)
        accumulator = FingerprintAccumulator()
        accumulator.observe("linux/firefox", records[:2])
        accumulator.observe("linux/firefox", records[2:4])
        accumulator.observe("linux/firefox", records[4:])
        assert accumulator.fingerprint("linux/firefox", margin=8) == batch
        assert accumulator.record_count == len(records)

    def test_types_may_arrive_in_different_batches(self):
        # A shard holding only one record type must not finalise prematurely
        # — the other type can arrive shards later.
        accumulator = FingerprintAccumulator()
        accumulator.observe("k", [_record(2200, LABEL_TYPE1)])
        with pytest.raises(FingerprintError, match="type-2"):
            accumulator.fingerprint("k")
        accumulator.observe("k", [_record(3000, LABEL_TYPE2)])
        fingerprint = accumulator.fingerprint("k", margin=0)
        assert fingerprint.type1_band.low == 2200
        assert fingerprint.type2_band.high == 3000
        assert fingerprint.training_records == 2

    def test_unknown_environment_rejected(self):
        with pytest.raises(FingerprintError, match="no records accumulated"):
            FingerprintAccumulator().fingerprint("nowhere/nothing")

    def test_empty_finalize_rejected(self):
        with pytest.raises(FingerprintError, match="no training records"):
            FingerprintAccumulator().finalize_into(FingerprintLibrary())

    def test_missing_type1_rejected(self):
        accumulator = FingerprintAccumulator()
        accumulator.observe("k", [_record(3000, LABEL_TYPE2)])
        with pytest.raises(FingerprintError, match="type-1"):
            accumulator.fingerprint("k")


class TestTrainIncremental:
    def test_equals_batch_train(self, study_graph, training_sessions):
        batch = WhiteMirrorAttack(graph=study_graph)
        batch.train(training_sessions)
        incremental = WhiteMirrorAttack(graph=study_graph)
        # Same sessions, folded in as three uneven "shards".
        incremental.train_incremental(
            [training_sessions[:1], training_sessions[1:3], training_sessions[3:]]
        )
        assert incremental.library.as_dict() == batch.library.as_dict()

    def test_equals_batch_train_over_a_sharded_dataset(self, fresh):
        loaded = ShardedDataset.load(fresh.directory)
        sessions = [
            session
            for shard in loaded.iter_shard_training_sessions()
            for session in shard
        ]
        batch = WhiteMirrorAttack()
        batch.train(sessions)
        incremental = WhiteMirrorAttack()
        incremental.train_incremental(loaded.iter_shard_training_sessions())
        assert incremental.library.as_dict() == batch.library.as_dict()

    def test_reports_progress_and_rejects_empty_input(self, study_graph, training_sessions):
        attack = WhiteMirrorAttack(graph=study_graph)
        folded: list[int] = []
        attack.train_incremental(
            [training_sessions[:2], [], training_sessions[2:]], progress=folded.append
        )
        assert folded == list(range(1, len(training_sessions) + 1))
        with pytest.raises(AttackError, match="no training sessions"):
            WhiteMirrorAttack().train_incremental([[], []])


class TestHeadlineFromDataset:
    def test_runs_over_a_sharded_dataset(self, fresh):
        result = reproduce_headline_from_dataset(
            fresh.directory, training_sessions_per_environment=1
        )
        assert result.training_sessions + result.evaluated_sessions == VIEWERS
        assert 0.0 <= result.worst_case_accuracy <= 1.0
        assert result.worst_case_accuracy <= min(
            entry.json_identification_accuracy for entry in result.per_environment
        ) + 1e-12
        rows = result.rows()
        assert rows[-2]["environment"] == "AGGREGATE"
        assert rows[-1]["environment"].startswith("WORST CASE")
        assert sum(entry.sessions for entry in result.per_environment) == (
            result.evaluated_sessions
        )

    def test_everything_used_for_calibration_is_an_error(self, fresh):
        with pytest.raises(AttackError, match="no sessions left to evaluate"):
            reproduce_headline_from_dataset(
                fresh.directory, training_sessions_per_environment=VIEWERS
            )

    def test_rejects_non_positive_training_count(self, fresh):
        with pytest.raises(AttackError, match="positive"):
            reproduce_headline_from_dataset(
                fresh.directory, training_sessions_per_environment=0
            )


def _copy_dataset(source: Path, target: Path) -> None:
    import shutil

    shutil.copytree(source, target)
