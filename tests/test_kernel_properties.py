"""Property tests pinning the vectorized kernels to their scalar oracles.

Every batch kernel replaced a per-record Python loop; these tests replay
seeded-random inputs — including the adversarial shapes the kernels must not
get wrong: band edges, adjacent and overlapping intervals, fallback values,
records split across packets at awkward boundaries — through both paths and
require *exact* equality.  The kernels are never allowed to be
"approximately" the attack.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import kernel
from repro.core.features import (
    LABEL_OTHER,
    LABEL_TYPE1,
    LABEL_TYPE2,
    _extract_records_scalar,
    _extract_records_vectorized,
)
from repro.core.fingerprint import (
    FingerprintLibrary,
    LengthBand,
    RecordLengthFingerprint,
)
from repro.ml.interval import IntervalClassifier
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.packet import Direction, Packet
from repro.tls.records import MAX_CIPHERTEXT_LENGTH, RECORD_HEADER_LENGTH

SEED = 0x5EED


def _random_fingerprint(rng: random.Random, margin: int) -> RecordLengthFingerprint:
    """A random non-overlapping (possibly adjacent) pair of widened bands."""
    while True:
        low1 = rng.randint(margin + 1, 600)
        high1 = low1 + rng.randint(0, 40)
        # Sometimes exactly adjacent after widening, sometimes far away.
        gap = rng.choice([2 * margin + 1, 2 * margin + 1, rng.randint(2 * margin + 1, 400)])
        low2 = high1 + gap
        high2 = low2 + rng.randint(0, 40)
        try:
            return RecordLengthFingerprint(
                condition_key=f"env-{low1}-{low2}",
                type1_band=LengthBand(low1, high1).widened(margin),
                type2_band=LengthBand(low2, high2).widened(margin),
                training_records=1 + rng.randint(0, 50),
            )
        except Exception:
            continue


def _edge_heavy_lengths(
    rng: random.Random, fingerprint: RecordLengthFingerprint, count: int
) -> list[int]:
    """Random lengths biased onto the band edges, where off-by-ones live."""
    edges = [
        fingerprint.type1_band.low,
        fingerprint.type1_band.high,
        fingerprint.type2_band.low,
        fingerprint.type2_band.high,
    ]
    lengths = []
    for _ in range(count):
        mode = rng.random()
        if mode < 0.5:
            lengths.append(max(1, rng.choice(edges) + rng.randint(-2, 2)))
        else:
            lengths.append(rng.randint(RECORD_HEADER_LENGTH + 1, 2_000))
    return lengths


class TestBandClassification:
    def test_kernel_matches_classify_length_oracle(self):
        rng = random.Random(SEED)
        for _ in range(50):
            margin = rng.randint(0, 10)
            fingerprint = _random_fingerprint(rng, margin)
            lengths = _edge_heavy_lengths(rng, fingerprint, 200)
            expected = [fingerprint.classify_length(length) for length in lengths]
            assert fingerprint.classify_lengths(lengths) == expected
            assert (
                fingerprint.classify_lengths(np.asarray(lengths, dtype=np.int64))
                == expected
            )

    def test_library_batch_matches_per_environment_oracle(self):
        rng = random.Random(SEED + 1)
        library = FingerprintLibrary()
        fingerprints = [_random_fingerprint(rng, rng.randint(0, 8)) for _ in range(7)]
        for fingerprint in fingerprints:
            library.add(fingerprint)
        lengths = [
            value
            for fingerprint in fingerprints
            for value in _edge_heavy_lengths(rng, fingerprint, 100)
        ]
        batched = library.classify_lengths(lengths)
        assert set(batched) == set(library.condition_keys)
        for condition_key, labels in batched.items():
            fingerprint = library.get(condition_key)
            assert labels == [fingerprint.classify_length(length) for length in lengths]

    def test_empty_batch(self):
        rng = random.Random(SEED + 2)
        fingerprint = _random_fingerprint(rng, 2)
        assert fingerprint.classify_lengths([]) == []
        assert fingerprint.classify([]) == []

    def test_overlapping_bands_honour_priority_order(self):
        # RecordLengthFingerprint forbids overlap, so pin the raw kernel's
        # precedence against a local first-hit oracle on overlapping and
        # duplicated intervals directly.
        rng = random.Random(SEED + 3)
        for _ in range(50):
            band_count = rng.randint(1, 6)
            bands = []
            for _ in range(band_count):
                low = rng.randint(1, 100)
                bands.append((low, low + rng.randint(0, 80)))
            if rng.random() < 0.5:
                bands.append(rng.choice(bands))  # exact duplicate interval
            values = [rng.randint(1, 220) for _ in range(300)]
            codes = kernel.classify_codes(values, bands).tolist()
            for value, code in zip(values, codes):
                expected = 0
                for position, (low, high) in enumerate(bands):
                    if low <= value <= high:
                        expected = position + 1
                        break
                assert code == expected


class TestIntervalClassifier:
    def _random_fitted(self, rng: random.Random) -> tuple[IntervalClassifier, int]:
        class_count = rng.randint(2, 6)
        values, labels = [], []
        for index in range(class_count):
            center = rng.randint(10, 500)
            for _ in range(rng.randint(1, 20)):
                values.append(center + rng.randint(-5, 5))
                labels.append(f"class-{index}")
        classifier = IntervalClassifier(margin=float(rng.randint(0, 6)))
        classifier.fit(np.asarray(values, dtype=float).reshape(-1, 1), labels)
        return classifier, max(values)

    def test_predict_matches_scalar_oracle(self):
        rng = random.Random(SEED + 4)
        for _ in range(50):
            classifier, top = self._random_fitted(rng)
            # Overlapping intervals arise naturally from nearby centers; the
            # fallback fires for values beyond every interval.
            queries = np.asarray(
                [rng.randint(0, top + 50) for _ in range(300)], dtype=float
            ).reshape(-1, 1)
            vectorized = classifier.predict(queries)
            scalar = classifier._predict_scalar(queries)
            assert vectorized.tolist() == scalar.tolist()

    def test_fallback_label(self):
        classifier = IntervalClassifier(margin=0.0, fallback_label="none-of-the-above")
        classifier.fit(
            np.asarray([10.0, 11.0, 30.0], dtype=float).reshape(-1, 1),
            ["a", "a", "b"],
        )
        predictions = classifier.predict(
            np.asarray([10.5, 30.0, 999.0], dtype=float).reshape(-1, 1)
        )
        assert predictions.tolist() == ["a", "b", "none-of-the-above"]
        assert (
            classifier._predict_scalar(
                np.asarray([999.0], dtype=float).reshape(-1, 1)
            ).tolist()
            == ["none-of-the-above"]
        )

    def test_ties_prefer_narrowest_then_label_order(self):
        classifier = IntervalClassifier(margin=0.0)
        classifier.fit(
            np.asarray([0.0, 100.0, 40.0, 60.0, 45.0, 55.0], dtype=float).reshape(-1, 1),
            ["wide", "wide", "mid", "mid", "tight", "tight"],
        )
        queries = np.asarray([50.0, 42.0, 5.0], dtype=float).reshape(-1, 1)
        assert classifier.predict(queries).tolist() == ["tight", "mid", "wide"]
        assert (
            classifier.predict(queries).tolist()
            == classifier._predict_scalar(queries).tolist()
        )


def _tls_stream(rng: random.Random, record_count: int) -> bytes:
    """A valid reassembled TLS stream of random records."""
    stream = bytearray()
    for _ in range(record_count):
        content = rng.choice([20, 21, 22, 23, 23, 23])
        length = rng.randint(1, 400)
        stream += bytes([content, 3, 3]) + length.to_bytes(2, "big")
        stream += bytes(rng.getrandbits(8) for _ in range(length))
    return bytes(stream)


def _packets_from_stream(
    stream: bytes, rng: random.Random, base_sequence: int = 1
) -> list[Packet]:
    """Split a TLS stream into contiguous uplink segments at random cuts."""
    five_tuple = FiveTuple(
        client=Endpoint("192.168.1.23", 51742), server=Endpoint("198.51.100.7", 443)
    )
    packets: list[Packet] = []
    offset = 0
    clock = 0.0
    while offset < len(stream):
        take = min(len(stream) - offset, rng.randint(1, 700))
        clock += rng.random() * 0.01
        packets.append(
            Packet(
                timestamp=clock,
                direction=Direction.CLIENT_TO_SERVER,
                five_tuple=five_tuple,
                payload=stream[offset : offset + take],
                sequence_number=base_sequence + offset,
            )
        )
        offset += take
    return packets


class TestRecordExtractionFastPath:
    def test_matches_scalar_oracle_on_clean_streams(self):
        rng = random.Random(SEED + 5)
        for _ in range(40):
            stream = _tls_stream(rng, rng.randint(0, 30))
            # Leave a trailing partial record half the time.
            if stream and rng.random() < 0.5:
                stream += bytes([23, 3, 3, 1, 0])[: rng.randint(1, 5)]
            packets = _packets_from_stream(stream, rng)
            fast = _extract_records_vectorized(packets)
            assert fast is not None
            assert fast == _extract_records_scalar(packets)

    def test_refuses_gaps_and_scalar_handles_them(self):
        rng = random.Random(SEED + 6)
        stream = _tls_stream(rng, 12)
        packets = _packets_from_stream(stream, rng)
        if len(packets) < 3:
            pytest.skip("stream split produced too few segments")
        with_gap = packets[:1] + packets[2:]  # drop one middle segment
        assert _extract_records_vectorized(with_gap) is None
        # The scalar parser resynchronises at the gap without raising.
        records = _extract_records_scalar(with_gap)
        assert all(record.wire_length > RECORD_HEADER_LENGTH for record in records)

    def test_refuses_annotated_packets(self):
        rng = random.Random(SEED + 7)
        packets = _packets_from_stream(_tls_stream(rng, 3), rng)
        packets[0].annotations["kind"] = LABEL_TYPE1
        assert _extract_records_vectorized(packets) is None

    def test_refuses_bad_framing(self):
        rng = random.Random(SEED + 8)
        # A declared fragment length beyond the TLS maximum loses framing.
        bogus = bytes([23, 3, 3]) + (MAX_CIPHERTEXT_LENGTH + 1).to_bytes(2, "big")
        stream = _tls_stream(rng, 2) + bogus + bytes(10)
        packets = _packets_from_stream(stream, rng)
        assert _extract_records_vectorized(packets) is None

    def test_empty_packet_list(self):
        assert _extract_records_vectorized([]) == []
        assert _extract_records_scalar([]) == []

    def test_labels_decode_through_shared_tables(self):
        codes = np.asarray([0, 1, 2, 1, 0])
        labels = kernel.decode_labels(codes, (LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2))
        assert labels == [LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2, LABEL_TYPE1, LABEL_OTHER]
