"""Tests for argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    ensure_in,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
    ensure_range,
)


class TestValidation:
    def test_ensure_positive_accepts_and_returns(self):
        assert ensure_positive(2.5, "x") == 2.5

    def test_ensure_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            ensure_positive(0, "x")

    def test_ensure_non_negative(self):
        assert ensure_non_negative(0, "y") == 0
        with pytest.raises(ConfigurationError):
            ensure_non_negative(-0.1, "y")

    def test_ensure_probability(self):
        assert ensure_probability(0.5, "p") == 0.5
        with pytest.raises(ConfigurationError):
            ensure_probability(1.2, "p")
        with pytest.raises(ConfigurationError):
            ensure_probability(-0.2, "p")

    def test_ensure_range(self):
        assert ensure_range(3, 1, 5, "r") == 3
        with pytest.raises(ConfigurationError):
            ensure_range(6, 1, 5, "r")

    def test_ensure_in(self):
        assert ensure_in("a", ("a", "b"), "v") == "a"
        with pytest.raises(ConfigurationError):
            ensure_in("c", ("a", "b"), "v")
