"""Tests for type-1/type-2 state message construction."""

from __future__ import annotations

import json

import pytest

from repro.client.json_state import (
    JSON_TYPE_1,
    JSON_TYPE_2,
    StateMessage,
    build_type1_message,
    build_type2_message,
)
from repro.client.profiles import figure2_conditions, profile_for
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomSource


@pytest.fixture()
def ubuntu_profile():
    return profile_for(figure2_conditions()[0])


class TestStateMessages:
    def test_type1_size_matches_profile(self, ubuntu_profile):
        rng = RandomSource(1)
        message = build_type1_message(ubuntu_profile, "Q1", 10.0, rng)
        assert message.kind == JSON_TYPE_1
        assert (
            abs(message.size_bytes - ubuntu_profile.type1_payload_bytes)
            <= ubuntu_profile.type1_payload_jitter
        )

    def test_type2_size_matches_profile(self, ubuntu_profile):
        rng = RandomSource(2)
        message = build_type2_message(ubuntu_profile, "Q2", 20.0, rng)
        assert message.kind == JSON_TYPE_2
        assert (
            abs(message.size_bytes - ubuntu_profile.type2_payload_bytes)
            <= ubuntu_profile.type2_payload_jitter
        )

    def test_payload_is_valid_json_with_semantics(self, ubuntu_profile):
        message = build_type1_message(ubuntu_profile, "Q3", 5.0, RandomSource(3))
        document = json.loads(message.payload.decode("utf-8"))
        assert document["messageKind"] == "type1"
        assert document["questionId"] == "Q3"
        assert document["player"]["interactive"] is True

    def test_type2_payload_mentions_branch_override(self, ubuntu_profile):
        message = build_type2_message(ubuntu_profile, "Q3", 5.0, RandomSource(3))
        document = json.loads(message.payload.decode("utf-8"))
        assert document["override"]["discardPrefetched"] is True

    def test_type2_is_larger_than_type1(self, ubuntu_profile):
        rng = RandomSource(4)
        type1 = build_type1_message(ubuntu_profile, "Q1", 1.0, rng)
        type2 = build_type2_message(ubuntu_profile, "Q1", 2.0, rng)
        assert type2.size_bytes > type1.size_bytes

    def test_messages_are_deterministic_per_rng_seed(self, ubuntu_profile):
        first = build_type1_message(ubuntu_profile, "Q1", 1.0, RandomSource(9))
        second = build_type1_message(ubuntu_profile, "Q1", 1.0, RandomSource(9))
        assert first.payload == second.payload

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            StateMessage(kind="weird", question_id="Q", payload=b"x", timestamp_seconds=0.0)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ConfigurationError):
            StateMessage(kind=JSON_TYPE_1, question_id="Q", payload=b"x", timestamp_seconds=-1.0)
