"""Tests for the Figure 2-style length-bin histogram."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.histogram import Histogram, LengthBin, bin_label, bins_from_edges


class TestLengthBin:
    def test_closed_bin_contains_bounds(self):
        bin_ = LengthBin(10, 20)
        assert bin_.contains(10) and bin_.contains(20)
        assert not bin_.contains(9) and not bin_.contains(21)

    def test_open_low_bin(self):
        bin_ = LengthBin(None, 100)
        assert bin_.contains(-5) and bin_.contains(100)
        assert not bin_.contains(101)

    def test_open_high_bin(self):
        bin_ = LengthBin(4334, None)
        assert bin_.contains(4334) and bin_.contains(10**6)
        assert not bin_.contains(4333)

    def test_unbounded_both_sides_rejected(self):
        with pytest.raises(ConfigurationError):
            LengthBin(None, None)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            LengthBin(5, 4)

    def test_labels_match_paper_style(self):
        assert bin_label(LengthBin(None, 2188)) == "<=2188"
        assert bin_label(LengthBin(2211, 2213)) == "2211-2213"
        assert bin_label(LengthBin(4334, None)) == ">=4334"
        assert bin_label(LengthBin(7, 7)) == "7"


class TestHistogram:
    def _histogram(self) -> Histogram:
        bins = bins_from_edges([(None, 10), (11, 20), (21, None)])
        return Histogram(bins=bins, categories=["a", "b"])

    def test_requires_bins_and_categories(self):
        with pytest.raises(ConfigurationError):
            Histogram(bins=[], categories=["a"])
        with pytest.raises(ConfigurationError):
            Histogram(bins=bins_from_edges([(1, 2)]), categories=[])

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(bins=bins_from_edges([(1, 2)]), categories=["a", "a"])

    def test_observe_and_counts(self):
        histogram = self._histogram()
        histogram.observe_many([1, 15, 30, 12], "a")
        histogram.observe(5, "b")
        assert histogram.counts("a") == (1, 2, 1)
        assert histogram.counts("b") == (1, 0, 0)
        assert histogram.total("a") == 4

    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigurationError):
            self._histogram().observe(1, "zzz")

    def test_percentages_sum_to_100(self):
        histogram = self._histogram()
        histogram.observe_many([1, 15, 30, 12], "a")
        assert sum(histogram.percentages("a")) == pytest.approx(100.0)

    def test_percentages_of_empty_category_are_zero(self):
        histogram = self._histogram()
        assert histogram.percentages("b") == (0.0, 0.0, 0.0)

    def test_dominant_bin(self):
        histogram = self._histogram()
        histogram.observe_many([12, 13, 14, 1], "a")
        assert histogram.dominant_bin("a").low == 11

    def test_dominant_bin_empty_category_rejected(self):
        with pytest.raises(ConfigurationError):
            self._histogram().dominant_bin("a")

    def test_overflow_counted_not_dropped(self):
        bins = bins_from_edges([(1, 5)])
        histogram = Histogram(bins=bins, categories=["only"])
        histogram.observe(99, "only")
        assert histogram.overflow_count == 1
        assert histogram.total("only") == 0

    def test_as_table_shape(self):
        histogram = self._histogram()
        histogram.observe(2, "a")
        rows = histogram.as_table()
        assert len(rows) == 3
        assert set(rows[0]) == {"bin", "a", "b"}
