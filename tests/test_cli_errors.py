"""Bad-input behaviour of every sub-command, driven through ``main()``.

Each case runs the real argv path end to end and pins the exit status and
the first stderr line — the contract scripts and CI greps rely on.  The
messages come from spec validation (:mod:`repro.jobs.specs`) and the job
runner, so these tests also pin that the jobs-layer refactor kept every
historical CLI error intact.
"""

from __future__ import annotations

import pytest

from repro.cli.main import main


@pytest.mark.parametrize(
    ("argv", "first_stderr_line"),
    [
        pytest.param(
            ["generate-dataset", "out", "--resume"],
            "error: --resume requires --shards (only sharded runs checkpoint)",
            id="generate-resume-without-shards",
        ),
        pytest.param(
            ["generate-dataset", "out", "--shard-workers", "2"],
            "error: --shard-workers requires --shards (only sharded runs fan "
            "whole shards out)",
            id="generate-shard-workers-without-shards",
        ),
        pytest.param(
            ["generate-dataset", "out", "--only-shards", "0"],
            "error: --only-shards requires --shards (the selection names "
            "shards of the full plan)",
            id="generate-only-shards-without-shards",
        ),
        pytest.param(
            ["stitch", "{tmp}/missing-root"],
            "error: {tmp}/missing-root is not a directory",
            id="stitch-missing-root",
        ),
        pytest.param(
            ["train", "{tmp}/missing-dataset", "lib.json"],
            "error: cannot load dataset metadata: [Errno 2] No such file or "
            "directory: '{tmp}/missing-dataset/metadata.json'",
            id="train-missing-dataset",
        ),
        pytest.param(
            ["train", "{tmp}/missing-dataset", "lib.json", "--train-fraction", "1.5"],
            "error: --train-fraction must be in (0, 1), got 1.5",
            id="train-fraction-out-of-range",
        ),
        pytest.param(
            ["train", "{tmp}/missing-dataset", "lib.json", "--save-state", "s.json"],
            "error: --save-state requires --sharded (accumulator state is the "
            "incremental training path's running calibration)",
            id="train-save-state-without-sharded",
        ),
        pytest.param(
            ["merge-fingerprints", "{tmp}/missing-state.json", "-o", "lib.json"],
            "error: cannot load accumulator state: [Errno 2] No such file or "
            "directory: '{tmp}/missing-state.json'",
            id="merge-missing-state",
        ),
        pytest.param(
            ["attack", "{tmp}/missing.pcap", "{tmp}/missing-lib.json"],
            "error: cannot determine the environment of {tmp}/missing.pcap: "
            "pass --environment or attack captures that sit next to their "
            "dataset metadata.json",
            id="attack-missing-pcap",
        ),
        pytest.param(
            [
                "attack",
                "{tmp}/missing.pcap",
                "{tmp}/missing-lib.json",
                "--results-log",
                "r.jsonl",
            ],
            "error: --results-log applies to directory targets; attack the "
            "capture's directory to log its verdict",
            id="attack-results-log-on-file-target",
        ),
        pytest.param(
            ["watch", "{tmp}/missing-drop", "--library", "{tmp}/missing-lib.json"],
            "error: capture drop directory {tmp}/missing-drop does not exist "
            "(create it before watching, or point at a dataset's traces/)",
            id="watch-missing-directory",
        ),
        pytest.param(
            ["reproduce", "--dataset", "{tmp}/ds", "--experiment", "table1"],
            "error: --dataset drives the headline experiment; combine it with "
            "--experiment headline (or all)",
            id="reproduce-dataset-wrong-experiment",
        ),
        pytest.param(
            ["inspect", "{tmp}/missing.pcap"],
            "error: cannot read pcap file {tmp}/missing.pcap: [Errno 2] No "
            "such file or directory: '{tmp}/missing.pcap'",
            id="inspect-missing-pcap",
        ),
        pytest.param(
            ["serve", "{tmp}/root", "{tmp}/lib.json", "--shards", "0"],
            "error: --shards must be at least 1 (the plan leases whole shards)",
            id="serve-zero-shards",
        ),
        pytest.param(
            ["serve", "{tmp}/root", "{tmp}/lib.json", "--viewers", "0"],
            "error: --viewers must be at least 1",
            id="serve-zero-viewers",
        ),
        pytest.param(
            ["serve", "{tmp}/root", "{tmp}/lib.json", "--lease-ttl", "0"],
            "error: --lease-ttl must be positive (seconds before a silent "
            "worker's unit is reassigned)",
            id="serve-zero-lease-ttl",
        ),
        pytest.param(
            ["work", "http://127.0.0.1:1", "--poll-interval", "0"],
            "error: --poll-interval must be positive",
            id="work-zero-poll-interval",
        ),
        pytest.param(
            ["work", "http://127.0.0.1:1", "--max-units", "0"],
            "error: --max-units must be at least 1",
            id="work-zero-max-units",
        ),
        pytest.param(
            ["watch", "--library", "lib.json"],
            "error: watch needs a drop directory: positional for the "
            "single-source mode, or --source (repeatable) for a fleet",
            id="watch-no-directory-no-source",
        ),
        pytest.param(
            ["watch", "{tmp}", "--source", "{tmp}", "--library", "lib.json"],
            "error: give either a positional drop directory or --source "
            "directories, not both",
            id="watch-directory-and-source",
        ),
        pytest.param(
            ["watch", "{tmp}", "--library", "lib.json", "--recursive"],
            "error: --recursive is a fleet-mode flag; it requires --source",
            id="watch-recursive-without-source",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}", "--library", "lib.json"],
            "error: fleet mode needs --results-log: the sources share one "
            "results log, and with several drop directories there is no "
            "single place to default it into",
            id="watch-fleet-without-results-log",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}", "--source", "{tmp}",
             "--library", "lib.json", "--results-log", "r.jsonl"],
            "error: duplicate --source directory {tmp}",
            id="watch-duplicate-source",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}/missing-box",
             "--library", "lib.json", "--results-log", "r.jsonl"],
            "error: capture source {tmp}/missing-box does not exist "
            "(--source must name an existing directory)",
            id="watch-missing-source",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}", "--library", "lib.json",
             "--results-log", "r.jsonl", "--queue-high", "0"],
            "error: --queue-high must be a positive capture count, got 0",
            id="watch-nonpositive-queue-high",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}", "--library", "lib.json",
             "--results-log", "r.jsonl", "--queue-low", "-1"],
            "error: --queue-low must be >= 0, got -1",
            id="watch-negative-queue-low",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}", "--library", "lib.json",
             "--results-log", "r.jsonl", "--queue-high", "4",
             "--queue-low", "4"],
            "error: --queue-high (4) must be greater than --queue-low (4) "
            "— the queue must drain below the low watermark before parked "
            "captures are promoted",
            id="watch-queue-high-not-above-low",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}", "--library", "lib.json",
             "--results-log", "r.jsonl", "--metrics-port", "70000"],
            "error: --metrics-port must be a TCP port (0-65535), got 70000",
            id="watch-metrics-port-out-of-range",
        ),
        pytest.param(
            ["watch", "--source", "{tmp}", "--library", "lib.json",
             "--results-log", "r.jsonl",
             "--reload-library", "{tmp}/missing-stage.json"],
            "error: cannot read --reload-library {tmp}/missing-stage.json: "
            "[Errno 2] No such file or directory: "
            "'{tmp}/missing-stage.json'",
            id="watch-missing-reload-library",
        ),
    ],
)
def test_bad_input_exit_status_and_first_stderr_line(
    argv, first_stderr_line, tmp_path, capsys
):
    tmp = str(tmp_path)
    exit_code = main([part.format(tmp=tmp) for part in argv])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert captured.err.splitlines()[0] == first_stderr_line.format(tmp=tmp)


def test_overlapping_watch_sources_name_both_directories(tmp_path, capsys):
    # Needs a real nested directory, which the templated table can't mkdir.
    inner = tmp_path / "outer" / "inner"
    inner.mkdir(parents=True)
    exit_code = main(
        ["watch", "--source", str(tmp_path / "outer"), "--source", str(inner),
         "--library", "lib.json", "--results-log", "r.jsonl"]
    )
    assert exit_code == 1
    assert capsys.readouterr().err.splitlines()[0] == (
        f"error: --source directories overlap: {inner} is inside "
        f"{tmp_path / 'outer'} (captures there would be attributed to both "
        "sources)"
    )


def test_corrupt_reload_library_names_the_flag(tmp_path, capsys):
    source = tmp_path / "box"
    source.mkdir()
    stage = tmp_path / "stage.json"
    stage.write_text("{not a library")
    exit_code = main(
        ["watch", "--source", str(source), "--library", "lib.json",
         "--results-log", "r.jsonl", "--reload-library", str(stage)]
    )
    assert exit_code == 1
    first = capsys.readouterr().err.splitlines()[0]
    assert first.startswith(
        f"error: --reload-library {stage} is not a loadable fingerprint "
        "library:"
    )


def test_unknown_log_format_rejected_by_argparse(tmp_path, capsys):
    # argparse itself polices the renderer choice (exit code 2, usage on
    # stderr) — a typo never reaches the runner.
    with pytest.raises(SystemExit) as excinfo:
        main(["--log-format", "xml", "inspect", str(tmp_path / "x.pcap")])
    assert excinfo.value.code == 2
    assert "--log-format" in capsys.readouterr().err
