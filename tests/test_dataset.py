"""Tests for the synthetic IITM-Bandersnatch dataset."""

from __future__ import annotations

import json

import pytest

from repro.dataset.attributes import table1_rows
from repro.dataset.collection import collect_dataset, default_study_script
from repro.dataset.format import load_dataset_metadata, save_dataset_metadata
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.population import Viewer, attribute_marginals, generate_population
from repro.exceptions import DatasetError
from repro.net.capture import CapturedTrace
from repro.streaming.session import SessionConfig


@pytest.fixture(scope="module")
def small_dataset():
    """A 6-viewer dataset shared by the expensive tests in this module."""
    return IITMBandersnatchDataset.generate(
        viewer_count=6,
        seed=42,
        config=SessionConfig(cross_traffic_enabled=False),
    )


class TestTable1Attributes:
    def test_table_has_paper_rows(self):
        rows = table1_rows()
        assert len(rows) == 9
        attributes = {row["attribute"] for row in rows}
        assert "Operating System" in attributes
        assert "Political Alignment" in attributes
        blocks = {row["conditions"] for row in rows}
        assert blocks == {"Operational", "Behavioral"}

    def test_paper_value_spellings(self):
        rows = {row["attribute"]: row["values"] for row in table1_rows()}
        assert "Google-chrome" in rows["Browser"]
        assert "Undisclosed" in rows["Gender"]


class TestPopulation:
    def test_deterministic_generation(self):
        first = generate_population(20, seed=5)
        second = generate_population(20, seed=5)
        assert [v.as_dict() for v in first] == [v.as_dict() for v in second]

    def test_viewer_ids_unique(self):
        viewers = generate_population(30, seed=1)
        assert len({v.viewer_id for v in viewers}) == 30

    def test_pinned_figure2_conditions_present(self):
        viewers = generate_population(4, seed=9)
        keys = {v.condition.fingerprint_key for v in viewers}
        assert {"linux/firefox", "windows/firefox"} <= keys

    def test_full_grid_covered_at_paper_scale(self):
        viewers = generate_population(100, seed=0)
        marginals = attribute_marginals(viewers)
        for attribute, counts in marginals.items():
            assert all(count > 0 for count in counts.values()), attribute

    def test_viewer_round_trip(self):
        viewer = generate_population(1, seed=3)[0]
        assert Viewer.from_dict(viewer.as_dict()) == viewer

    def test_invalid_count_rejected(self):
        with pytest.raises(DatasetError):
            generate_population(0)


class TestCollection:
    def test_each_viewer_gets_a_data_point(self, small_dataset):
        assert len(small_dataset) == 6
        for point in small_dataset:
            assert point.session.session_id == point.viewer.viewer_id
            assert point.session.path.choice_count == 10
            assert point.session.trace.packet_count > 100

    def test_ground_truth_exposed(self, small_dataset):
        point = small_dataset.points[0]
        assert len(point.ground_truth_choices) == 10
        assert len(point.selected_labels) == 10
        metadata = point.metadata()
        assert metadata["viewer"]["viewer_id"] == point.viewer.viewer_id
        assert len(metadata["choices"]) == 10

    def test_collection_requires_viewers(self):
        with pytest.raises(DatasetError):
            collect_dataset([])

    def test_progress_callback_called(self):
        calls = []
        IITMBandersnatchDataset.generate(
            viewer_count=2,
            seed=1,
            config=SessionConfig(cross_traffic_enabled=False),
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]


class TestDatasetObject:
    def test_summary(self, small_dataset):
        summary = small_dataset.summary()
        assert summary.viewer_count == 6
        assert summary.total_choices == 60
        assert 0.0 < summary.non_default_fraction < 1.0
        assert summary.total_packets > 0

    def test_slicing_by_fingerprint_key(self, small_dataset):
        ubuntu_points = small_dataset.by_fingerprint_key("linux/firefox")
        assert ubuntu_points
        for point in ubuntu_points:
            assert point.viewer.condition.fingerprint_key == "linux/firefox"

    def test_by_condition(self, small_dataset):
        condition = small_dataset.points[0].viewer.condition
        assert small_dataset.by_condition(condition)

    def test_train_test_split_covers_every_environment(self, small_dataset):
        train, test = small_dataset.train_test_split(test_fraction=0.5)
        assert len(train) + len(test) == len(small_dataset)
        test_keys = {p.viewer.condition.fingerprint_key for p in test}
        train_keys = {p.viewer.condition.fingerprint_key for p in train}
        assert test_keys <= train_keys

    def test_invalid_split_fraction(self, small_dataset):
        with pytest.raises(DatasetError):
            small_dataset.train_test_split(test_fraction=1.5)

    def test_table1_accessor(self, small_dataset):
        assert small_dataset.table1() == table1_rows()


class TestPersistence:
    def test_save_and_load_metadata_with_pcaps(self, tmp_path, small_dataset):
        directory = tmp_path / "dataset"
        metadata_path = small_dataset.save(directory)
        assert metadata_path.exists()
        metadata = load_dataset_metadata(directory)
        assert metadata["viewer_count"] == 6
        assert len(metadata["entries"]) == 6
        first = metadata["entries"][0]
        pcap_path = directory / first["trace_file"]
        assert pcap_path.exists()
        # The stored pcap round-trips into a parseable trace.
        restored = CapturedTrace.from_pcap(
            pcap_path, client_ip=first["client_ip"], server_ip=first["server_ip"]
        )
        assert restored.packet_count > 100

    def test_round_trip_preserves_packet_counts_and_ground_truth(
        self, tmp_path, small_dataset
    ):
        # save → load → per-entry pcap re-read: every entry's re-parsed trace
        # matches the packet count recorded at save time, and the ground
        # truth survives untouched.
        directory = tmp_path / "dataset"
        small_dataset.save(directory)
        metadata = load_dataset_metadata(directory)
        assert len(metadata["entries"]) == len(small_dataset.points)
        for entry, point in zip(metadata["entries"], small_dataset.points):
            restored = CapturedTrace.from_pcap(
                directory / entry["trace_file"],
                client_ip=entry["client_ip"],
                server_ip=entry["server_ip"],
            )
            assert restored.packet_count == entry["packet_count"]
            assert restored.packet_count == point.session.trace.packet_count
            truth = tuple(bool(c["took_default"]) for c in entry["choices"])
            assert truth == point.ground_truth_choices
            labels = tuple(str(c["selected_label"]) for c in entry["choices"])
            assert labels == point.selected_labels

    def test_incremental_writer_matches_one_shot_save(self, tmp_path, small_dataset):
        from repro.dataset.format import DatasetWriter

        one_shot = tmp_path / "one-shot"
        streamed = tmp_path / "streamed"
        small_dataset.save(one_shot)
        with DatasetWriter(
            streamed,
            seed=small_dataset.seed,
            config=SessionConfig(cross_traffic_enabled=False),
            graph=small_dataset.graph,
        ) as writer:
            for point in small_dataset.points:
                writer.add(point)
        assert (streamed / "metadata.json").read_bytes() == (
            one_shot / "metadata.json"
        ).read_bytes()
        for pcap in sorted((one_shot / "traces").glob("*.pcap")):
            assert pcap.read_bytes() == (streamed / "traces" / pcap.name).read_bytes()

    def test_writer_rejects_empty_and_reuse_after_close(self, tmp_path, small_dataset):
        from repro.dataset.format import DatasetWriter

        with pytest.raises(DatasetError):
            DatasetWriter(tmp_path / "empty").close()
        writer = DatasetWriter(tmp_path / "sealed", seed=0)
        writer.add(small_dataset.points[0])
        path = writer.close()
        assert path == writer.close()  # idempotent
        with pytest.raises(DatasetError):
            writer.add(small_dataset.points[1])

    def test_metadata_contains_no_feature_leakage(self, tmp_path, small_dataset):
        directory = tmp_path / "dataset"
        small_dataset.save(directory, write_pcaps=False)
        raw = json.loads((directory / "metadata.json").read_text())
        assert "record_lengths" not in json.dumps(raw)

    def test_load_rejects_malformed_metadata(self, tmp_path):
        directory = tmp_path / "broken"
        directory.mkdir()
        (directory / "metadata.json").write_text(json.dumps({"name": "x"}))
        with pytest.raises(DatasetError):
            load_dataset_metadata(directory)

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            save_dataset_metadata([], tmp_path)


class TestStudyScript:
    def test_default_study_script_is_full_structure(self):
        graph = default_study_script()
        assert graph.choice_point_count >= 10
        graph.validate()
