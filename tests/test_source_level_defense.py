"""Tests for the source-level countermeasure (padding the reports before TLS).

The paper's suggested fix is for the *service* to make the state reports
indistinguishable.  ``SessionConfig.state_report_pad_to`` applies that fix
inside the simulated client, which lets us check the strongest claim: once
the two report types leave the client at one constant size, even an adaptive
attacker who trains on defended traffic cannot separate them by length.
"""

from __future__ import annotations

import pytest

from repro.client.profiles import figure2_conditions
from repro.client.viewer import ViewerBehavior
from repro.core.features import LABEL_TYPE1, LABEL_TYPE2, extract_client_records
from repro.core.pipeline import WhiteMirrorAttack
from repro.exceptions import FingerprintError, StreamingError
from repro.streaming.session import SessionConfig, simulate_session

_PAD_TO = 3400  # larger than any unpadded report under every profile


@pytest.fixture(scope="module")
def padded_sessions(study_graph):
    condition = figure2_conditions()[0]
    behavior = ViewerBehavior("20-25", "undisclosed", "undisclosed", "happy")
    config = SessionConfig(state_report_pad_to=_PAD_TO, cross_traffic_enabled=False)
    return [
        simulate_session(
            study_graph,
            condition,
            behavior,
            seed=4000 + index,
            config=config,
            session_id=f"padded-{index}",
        )
        for index in range(2)
    ]


class TestSourceLevelPadding:
    def test_invalid_padding_target_rejected(self):
        with pytest.raises(StreamingError):
            SessionConfig(state_report_pad_to=0)

    def test_both_report_types_share_one_wire_length(self, padded_sessions):
        for session in padded_sessions:
            records = extract_client_records(
                session.trace, server_ip=session.trace.server_ip
            )
            report_lengths = {
                record.wire_length
                for record in records
                if record.label in (LABEL_TYPE1, LABEL_TYPE2)
            }
            assert len(report_lengths) == 1
            # plaintext pad target + AES-128-GCM expansion (24) + header (5)
            assert report_lengths == {_PAD_TO + 29}

    def test_streaming_protocol_is_unchanged(self, padded_sessions):
        for session in padded_sessions:
            kinds = session.transmitted_state_message_kinds()
            assert kinds.count("type1") == session.path.choice_count
            assert kinds.count("type2") == session.path.non_default_count

    def test_adaptive_band_attacker_cannot_train_on_padded_traffic(
        self, study_graph, padded_sessions
    ):
        attack = WhiteMirrorAttack(graph=study_graph)
        # The two report types now occupy the same lengths, so no separating
        # band fingerprint exists and training must refuse rather than
        # silently produce a bogus fingerprint.
        with pytest.raises(FingerprintError):
            attack.train(padded_sessions)

    def test_unpadded_training_does_not_transfer_to_padded_victims(
        self, trained_attack, padded_sessions
    ):
        for session in padded_sessions:
            result = trained_attack.attack_session(session)
            evaluation = result.evaluate_against(session)
            # Every state report now falls outside the learned bands, so the
            # attack recovers nothing (no false "choices" are invented either).
            assert evaluation.correct_json_records == 0
            assert result.inferred.choice_count == 0
