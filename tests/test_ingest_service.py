"""End-to-end tests of the streaming attack service and ``repro watch``.

Covers the tentpole guarantees: the online (watch) and offline (batch
attack) paths share one code path and write byte-identical results logs; a
killed-and-restarted watcher converges on exactly one verdict per capture
(no duplicates, no gaps), whether the kill hit mid-capture or mid-append.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.collection import default_study_script
from repro.dataset.shards import iter_shard_training_sessions
from repro.ingest.log import ResultsLog, capture_fingerprint
from repro.ingest.service import StreamingAttackService
from repro.ingest.watcher import INPROGRESS_SUFFIX


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory) -> Path:
    """A small generated dataset whose pcaps double as 'live' captures."""
    directory = tmp_path_factory.mktemp("ingest-dataset")
    assert (
        main(
            [
                "generate-dataset",
                str(directory),
                "--viewers",
                "3",
                "--seed",
                "11",
                "--no-cross-traffic",
            ]
        )
        == 0
    )
    return directory


@pytest.fixture(scope="module")
def library_path(dataset_dir, tmp_path_factory) -> Path:
    """Fingerprints trained on every viewer, so no capture is skipped."""
    attack = WhiteMirrorAttack(graph=default_study_script())
    attack.train(iter_shard_training_sessions(dataset_dir))
    path = tmp_path_factory.mktemp("ingest-lib") / "library.json"
    attack.library.save(path)
    return path


def _make_drop_directory(dataset_dir: Path, destination: Path) -> list[Path]:
    """Replay a dataset's captures (and its metadata) into a drop directory."""
    destination.mkdir(parents=True, exist_ok=True)
    shutil.copy(dataset_dir / "metadata.json", destination / "metadata.json")
    copied = []
    for pcap in sorted((dataset_dir / "traces").glob("*.pcap")):
        copied.append(Path(shutil.copy(pcap, destination / pcap.name)))
    return copied


def _log_captures(log_path: Path) -> list[str]:
    return [
        json.loads(line)["capture"]
        for line in log_path.read_text().splitlines()
    ]


class TestWatchMatchesBatchAttack:
    def test_once_log_is_byte_identical_to_batch_attack_log(
        self, dataset_dir, library_path, tmp_path, capsys
    ):
        drop = tmp_path / "drop"
        _make_drop_directory(dataset_dir, drop)
        watch_log = tmp_path / "watch.jsonl"
        attack_log = tmp_path / "attack.jsonl"
        assert (
            main(
                [
                    "watch",
                    str(drop),
                    "--library",
                    str(library_path),
                    "--once",
                    "--results-log",
                    str(watch_log),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "attack",
                    str(drop),
                    str(library_path),
                    "--results-log",
                    str(attack_log),
                ]
            )
            == 0
        )
        assert watch_log.read_bytes() == attack_log.read_bytes()
        assert len(_log_captures(watch_log)) == 3
        output = capsys.readouterr().out
        assert "Running aggregate accuracy" in output
        assert "aggregate: attacked" in output

    def test_watch_default_log_lives_in_the_drop_directory(
        self, dataset_dir, library_path, tmp_path, capsys
    ):
        drop = tmp_path / "drop"
        _make_drop_directory(dataset_dir, drop)
        assert (
            main(["watch", str(drop), "--library", str(library_path), "--once"])
            == 0
        )
        assert (drop / "results.jsonl").exists()
        # The log itself must not be mistaken for a capture on a second run.
        assert (
            main(["watch", str(drop), "--library", str(library_path), "--once"])
            == 0
        )
        assert len(_log_captures(drop / "results.jsonl")) == 3

    def test_batch_attack_resumes_from_the_log_too(
        self, dataset_dir, library_path, tmp_path, capsys
    ):
        drop = tmp_path / "drop"
        _make_drop_directory(dataset_dir, drop)
        log = tmp_path / "log.jsonl"
        main(["attack", str(drop), str(library_path), "--results-log", str(log)])
        reference = log.read_bytes()
        capsys.readouterr()
        # A second batch run appends nothing and reports the skips.
        assert (
            main(
                ["attack", str(drop), str(library_path), "--results-log", str(log)]
            )
            == 0
        )
        assert log.read_bytes() == reference
        assert "already attacked" in capsys.readouterr().out


class TestServiceResumption:
    def test_restart_skips_by_content_fingerprint_not_name(
        self, dataset_dir, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary

        drop = tmp_path / "drop"
        captures = _make_drop_directory(dataset_dir, drop)
        log = tmp_path / "log.jsonl"
        library = FingerprintLibrary.load(library_path)
        service = StreamingAttackService(library=library, log_path=log)
        service.process(captures)
        assert len(service.verdicts) == 3
        # The same bytes under a new name are recognised and skipped...
        renamed = drop / "renamed-copy.pcap"
        shutil.copy(captures[0], renamed)
        skips = []
        restarted = StreamingAttackService(library=library, log_path=log)
        fresh = restarted.process(
            [renamed], on_skip=lambda path, reason: skips.append((path.name, reason))
        )
        assert fresh == []
        assert skips and "already attacked" in skips[0][1]
        # The restarted service still knows every logged verdict.
        assert len(restarted.verdicts) == 3
        assert ResultsLog(log).load() == list(restarted.verdicts)

    def test_unknown_environment_captures_are_skipped_not_fatal(
        self, dataset_dir, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary

        drop = tmp_path / "drop"
        captures = _make_drop_directory(dataset_dir, drop)
        # A foreign capture with no metadata entry: environment unknowable.
        # Distinct content, or the content-fingerprint dedup would fire
        # first (it is checked before environment resolution — cheaper).
        foreign = drop / "zz-foreign.pcap"
        foreign.write_bytes(captures[0].read_bytes() + b"trailer")
        library = FingerprintLibrary.load(library_path)
        service = StreamingAttackService(library=library, log_path=None)
        skips = []
        fresh = service.process(
            captures + [foreign],
            on_skip=lambda path, reason: skips.append((path.name, reason)),
        )
        assert len(fresh) == 3
        assert [name for name, _ in skips] == ["zz-foreign.pcap"]
        assert "environment" in skips[0][1]


class TestCrashSafety:
    def test_kill_mid_jsonl_append_repairs_and_converges(
        self, dataset_dir, library_path, tmp_path
    ):
        """Truncating the last line (crash mid-append) loses exactly one
        verdict, and the restart re-attacks exactly that capture."""
        drop = tmp_path / "drop"
        _make_drop_directory(dataset_dir, drop)
        log = tmp_path / "log.jsonl"
        reference = tmp_path / "reference.jsonl"
        main(["watch", str(drop), "--library", str(library_path), "--once",
              "--results-log", str(reference)])
        shutil.copy(reference, log)
        # Simulate the kill: the final verdict line persisted only partially.
        raw = log.read_bytes()
        lines = raw.splitlines(keepends=True)
        with open(log, "rb+") as handle:
            handle.truncate(len(raw) - len(lines[-1]) + 9)
        assert (
            main(["watch", str(drop), "--library", str(library_path), "--once",
                  "--results-log", str(log)])
            == 0
        )
        # Converged: byte-identical to the uninterrupted run — one verdict
        # per capture, no duplicates, no gaps.
        assert log.read_bytes() == reference.read_bytes()

    def test_kill_mid_capture_is_invisible_until_the_capture_finishes(
        self, dataset_dir, library_path, tmp_path, capsys
    ):
        """A capture whose writer died mid-copy (marker still present) is
        not attacked; finishing the rename later yields exactly one verdict."""
        drop = tmp_path / "drop"
        captures = _make_drop_directory(dataset_dir, drop)
        log = tmp_path / "log.jsonl"
        # The last capture is still being written when the watcher runs.
        unfinished = captures[-1]
        staged = drop / (unfinished.name + INPROGRESS_SUFFIX)
        os.replace(unfinished, staged)
        main(["watch", str(drop), "--library", str(library_path), "--once",
              "--results-log", str(log)])
        attacked = _log_captures(log)
        assert unfinished.name not in attacked
        assert len(attacked) == 2
        # The writer restarts and completes the capture atomically.
        os.replace(staged, unfinished)
        main(["watch", str(drop), "--library", str(library_path), "--once",
              "--results-log", str(log)])
        attacked = _log_captures(log)
        assert attacked.count(unfinished.name) == 1
        assert len(attacked) == 3

    def test_sigkilled_follow_watcher_restarts_without_dupes_or_gaps(
        self, dataset_dir, library_path, tmp_path
    ):
        """The acceptance-criterion scenario, for real: SIGKILL a follow-mode
        ``repro watch`` subprocess after its first verdict, restart with
        ``--once``, and require exactly one verdict per capture."""
        drop = tmp_path / "drop"
        captures = _make_drop_directory(dataset_dir, drop)
        log = tmp_path / "log.jsonl"
        environment = dict(os.environ)
        environment["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep
            + environment.get("PYTHONPATH", "")
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "watch", str(drop),
                "--library", str(library_path),
                "--follow", "--poll-interval", "0.1",
                "--results-log", str(log),
            ],
            env=environment,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                if log.exists() and len(log.read_bytes().splitlines()) >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("follow-mode watcher produced no verdict in 60s")
        finally:
            process.kill()
            process.wait(timeout=30)
        # Restart over the same directory: only the unattacked remainder runs.
        assert (
            main(["watch", str(drop), "--library", str(library_path), "--once",
                  "--results-log", str(log)])
            == 0
        )
        attacked = _log_captures(log)
        assert sorted(attacked) == sorted(p.name for p in captures)
        assert len(attacked) == len(set(attacked))
        # And the converged log carries every capture's fingerprint exactly
        # once — the restart keyed on content, not on luck.
        fingerprints = [
            json.loads(line)["fingerprint"] for line in log.read_text().splitlines()
        ]
        assert sorted(fingerprints) == sorted(
            capture_fingerprint(path) for path in captures
        )


class TestServiceRobustness:
    """Review-hardened behaviours: the long-running service must outlive
    bad captures, and the batch CLI must keep its actionable errors."""

    def test_capture_deleted_between_scan_and_read_is_skipped(
        self, dataset_dir, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary

        drop = tmp_path / "drop"
        captures = _make_drop_directory(dataset_dir, drop)
        ghost = drop / "rotated-away.pcap"  # reported by a scan, then deleted
        service = StreamingAttackService(
            library=FingerprintLibrary.load(library_path), log_path=None
        )
        skips = []
        fresh = service.process(
            [ghost] + captures,
            on_skip=lambda path, reason: skips.append((path.name, reason)),
        )
        assert len(fresh) == 3
        assert skips[0][0] == "rotated-away.pcap"
        assert "unreadable" in skips[0][1]

    def test_follow_mode_survives_a_corrupt_capture(
        self, dataset_dir, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary

        drop = tmp_path / "drop"
        drop.mkdir()
        (drop / "corrupt.pcap").write_bytes(b"not a pcap at all")
        errors: list[Exception] = []
        service = StreamingAttackService(
            library=FingerprintLibrary.load(library_path),
            log_path=tmp_path / "log.jsonl",
            environment="linux/firefox",
        )
        service.run(
            drop,
            follow=True,
            poll_interval=0.01,
            on_error=errors.append,
            should_stop=lambda: bool(errors),
        )
        assert len(errors) == 1
        assert "corrupt.pcap" in str(errors[0])
        # Nothing was logged for the failed capture: a restart re-examines it.
        assert ResultsLog(tmp_path / "log.jsonl").load() == []

    def test_once_mode_still_fails_loudly_on_a_corrupt_capture(
        self, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary
        from repro.exceptions import ReproError

        drop = tmp_path / "drop"
        drop.mkdir()
        (drop / "corrupt.pcap").write_bytes(b"not a pcap at all")
        service = StreamingAttackService(
            library=FingerprintLibrary.load(library_path),
            log_path=None,
            environment="linux/firefox",
        )
        with pytest.raises(ReproError, match="corrupt.pcap"):
            service.run(drop, follow=False)

    def test_duplicate_content_without_a_log_is_attacked_twice(
        self, dataset_dir, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary

        drop = tmp_path / "drop"
        captures = _make_drop_directory(dataset_dir, drop)
        twin = drop / "twin.pcap"
        shutil.copy(captures[0], twin)
        # No results log: there is no resume state to protect, so a batch
        # caller gets every named capture attacked, duplicates included.
        # (--environment override: the twin has no metadata entry.)
        service = StreamingAttackService(
            library=FingerprintLibrary.load(library_path),
            log_path=None,
            environment="linux/firefox",
        )
        fresh = service.process(captures + [twin])
        assert len(fresh) == 4

    def test_results_log_in_a_missing_directory_fails_before_attacking(
        self, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary
        from repro.exceptions import IngestError

        with pytest.raises(IngestError, match="does not exist"):
            StreamingAttackService(
                library=FingerprintLibrary.load(library_path),
                log_path=tmp_path / "no" / "such" / "dir" / "log.jsonl",
            )

    def test_attack_directory_without_metadata_names_the_environment_flag(
        self, dataset_dir, library_path, tmp_path, capsys
    ):
        # Bare pcaps, no metadata.json, no --environment: the old actionable
        # error must survive the refactor onto the service.
        drop = tmp_path / "drop"
        drop.mkdir()
        for pcap in sorted((dataset_dir / "traces").glob("*.pcap")):
            shutil.copy(pcap, drop / pcap.name)
        exit_code = main(["attack", str(drop), str(library_path)])
        assert exit_code == 1
        assert "--environment" in capsys.readouterr().err


class TestForeignMetadataAndFlagMisuse:
    def test_malformed_metadata_entry_is_skipped_not_fatal(
        self, dataset_dir, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary

        drop = tmp_path / "drop"
        captures = _make_drop_directory(dataset_dir, drop)
        # Break one capture's ground-truth record: foreign/hand-edited
        # metadata must not kill the service (KeyError would escape the
        # follow loop's ReproError handling).
        metadata_path = drop / "metadata.json"
        metadata = json.loads(metadata_path.read_text())
        del metadata["entries"][0]["choices"]
        metadata_path.write_text(json.dumps(metadata))
        service = StreamingAttackService(
            library=FingerprintLibrary.load(library_path), log_path=None
        )
        skips = []
        fresh = service.process(
            captures,
            on_skip=lambda path, reason: skips.append((path.name, reason)),
        )
        assert len(fresh) == 2
        assert [name for name, _ in skips] == [captures[0].name]
        assert "ground-truth" in skips[0][1]

    def test_single_file_attack_rejects_results_log(
        self, dataset_dir, library_path, capsys
    ):
        pcap = sorted((dataset_dir / "traces").glob("*.pcap"))[0]
        exit_code = main(
            ["attack", str(pcap), str(library_path), "--results-log", "/tmp/x.jsonl"]
        )
        assert exit_code == 1
        assert "--results-log" in capsys.readouterr().err

    def test_duplicate_content_dedup_is_identical_serial_and_parallel(
        self, dataset_dir, library_path, tmp_path
    ):
        from repro.core.fingerprint import FingerprintLibrary

        # The dedup decision must be taken at task-generation time: deciding
        # against the result-time attacked set would race the parallel
        # pull-ahead window and double-log duplicate-content captures.
        library = FingerprintLibrary.load(library_path)
        logs = {}
        for label, workers in (("serial", None), ("parallel", 2)):
            drop = tmp_path / f"drop-{label}"
            captures = _make_drop_directory(dataset_dir, drop)
            # aa-twin sorts *before* its original, so the twin is attacked
            # and the original becomes the in-batch duplicate.
            twin = drop / "aa-twin.pcap"
            shutil.copy(captures[0], twin)
            log = tmp_path / f"{label}.jsonl"
            service = StreamingAttackService(
                library=library,
                log_path=log,
                workers=workers,
                environment="linux/firefox",
            )
            fresh = service.process(sorted(drop.glob("*.pcap")))
            assert len(fresh) == 3  # twin attacked once, duplicate skipped
            logs[label] = log.read_bytes()
        assert logs["serial"] == logs["parallel"]
        fingerprints = [
            json.loads(line)["fingerprint"]
            for line in logs["serial"].decode().splitlines()
        ]
        assert len(fingerprints) == len(set(fingerprints))
