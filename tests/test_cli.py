"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_attack_requires_environment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "x.pcap", "lib.json"])


class TestGenerateInspectTrainAttack:
    """End-to-end CLI workflow on a tiny dataset (kept small for speed)."""

    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory) -> Path:
        directory = tmp_path_factory.mktemp("cli-dataset")
        exit_code = main(
            [
                "generate-dataset",
                str(directory),
                "--viewers",
                "3",
                "--seed",
                "5",
                "--no-cross-traffic",
            ]
        )
        assert exit_code == 0
        return directory

    def test_generate_dataset_writes_artifacts(self, dataset_dir):
        metadata = json.loads((dataset_dir / "metadata.json").read_text())
        assert metadata["viewer_count"] == 3
        assert metadata["seed"] == 5
        pcaps = list((dataset_dir / "traces").glob("*.pcap"))
        assert len(pcaps) == 3

    def test_inspect_summarises_a_pcap(self, dataset_dir, capsys):
        pcap = sorted((dataset_dir / "traces").glob("*.pcap"))[0]
        exit_code = main(["inspect", str(pcap)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Flows in" in output
        assert "client TLS records" in output

    def test_train_then_attack(self, dataset_dir, tmp_path, capsys):
        library_path = tmp_path / "fingerprints.json"
        exit_code = main(
            [
                "train",
                str(dataset_dir),
                str(library_path),
                "--train-fraction",
                "0.67",
            ]
        )
        assert exit_code == 0
        assert library_path.exists()
        library = json.loads(library_path.read_text())
        assert library  # at least one environment learned

        # Attack one of the dataset's own pcaps with the learned fingerprints.
        metadata = json.loads((dataset_dir / "metadata.json").read_text())
        entry = metadata["entries"][0]
        environment = "/".join(
            (
                entry["viewer"]["condition"]["operating_system"],
                entry["viewer"]["condition"]["browser"],
            )
        )
        if environment not in library:
            pytest.skip("first viewer's environment not in the calibration half")
        capsys.readouterr()
        exit_code = main(
            [
                "attack",
                str(dataset_dir / entry["trace_file"]),
                str(library_path),
                "--environment",
                environment,
                "--client-ip",
                entry["client_ip"],
                "--server-ip",
                entry["server_ip"],
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Recovered choices" in output
        assert "Behavioural profile" in output

    def test_attack_with_unknown_environment_fails_cleanly(self, dataset_dir, tmp_path, capsys):
        library_path = tmp_path / "fingerprints2.json"
        main(["train", str(dataset_dir), str(library_path)])
        metadata = json.loads((dataset_dir / "metadata.json").read_text())
        entry = metadata["entries"][0]
        exit_code = main(
            [
                "attack",
                str(dataset_dir / entry["trace_file"]),
                str(library_path),
                "--environment",
                "amiga/netscape",
                "--client-ip",
                entry["client_ip"],
            ]
        )
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_pcap_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["inspect", str(tmp_path / "missing.pcap")])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err


class TestReproduceCommand:
    def test_quick_figure1_reproduction(self, capsys):
        exit_code = main(["reproduce", "--experiment", "figure1", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 1" in output
        assert "matches the paper's description: True" in output

    def test_quick_table1_reproduction(self, capsys):
        exit_code = main(["reproduce", "--experiment", "table1", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Operating System" in output
