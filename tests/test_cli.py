"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_attack_without_environment_or_metadata_fails(self, tmp_path, capsys):
        # --environment is optional at parse time (dataset metadata can
        # supply it per capture), but attacking a bare pcap without either
        # source must fail cleanly, naming the flag.
        exit_code = main(["attack", str(tmp_path / "x.pcap"), str(tmp_path / "lib.json")])
        assert exit_code == 1
        assert "--environment" in capsys.readouterr().err


class TestGenerateInspectTrainAttack:
    """End-to-end CLI workflow on a tiny dataset (kept small for speed)."""

    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory) -> Path:
        directory = tmp_path_factory.mktemp("cli-dataset")
        exit_code = main(
            [
                "generate-dataset",
                str(directory),
                "--viewers",
                "3",
                "--seed",
                "5",
                "--no-cross-traffic",
            ]
        )
        assert exit_code == 0
        return directory

    def test_generate_dataset_writes_artifacts(self, dataset_dir):
        metadata = json.loads((dataset_dir / "metadata.json").read_text())
        assert metadata["viewer_count"] == 3
        assert metadata["seed"] == 5
        pcaps = list((dataset_dir / "traces").glob("*.pcap"))
        assert len(pcaps) == 3

    def test_inspect_summarises_a_pcap(self, dataset_dir, capsys):
        pcap = sorted((dataset_dir / "traces").glob("*.pcap"))[0]
        exit_code = main(["inspect", str(pcap)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Flows in" in output
        assert "client TLS records" in output

    def test_train_then_attack(self, dataset_dir, tmp_path, capsys):
        library_path = tmp_path / "fingerprints.json"
        exit_code = main(
            [
                "train",
                str(dataset_dir),
                str(library_path),
                "--train-fraction",
                "0.67",
            ]
        )
        assert exit_code == 0
        assert library_path.exists()
        library = json.loads(library_path.read_text())
        assert library  # at least one environment learned

        # Attack one of the dataset's own pcaps with the learned fingerprints.
        metadata = json.loads((dataset_dir / "metadata.json").read_text())
        entry = metadata["entries"][0]
        environment = "/".join(
            (
                entry["viewer"]["condition"]["operating_system"],
                entry["viewer"]["condition"]["browser"],
            )
        )
        if environment not in library:
            pytest.skip("first viewer's environment not in the calibration half")
        capsys.readouterr()
        exit_code = main(
            [
                "attack",
                str(dataset_dir / entry["trace_file"]),
                str(library_path),
                "--environment",
                environment,
                "--client-ip",
                entry["client_ip"],
                "--server-ip",
                entry["server_ip"],
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Recovered choices" in output
        assert "Behavioural profile" in output

    def test_train_rejects_out_of_range_fraction(self, dataset_dir, tmp_path, capsys):
        exit_code = main(
            [
                "train",
                str(dataset_dir),
                str(tmp_path / "unused.json"),
                "--train-fraction",
                "1.5",
            ]
        )
        assert exit_code == 1
        assert "--train-fraction" in capsys.readouterr().err

    def test_attack_single_pcap_resolves_environment_from_metadata(
        self, dataset_dir, tmp_path, capsys
    ):
        library_path = tmp_path / "fingerprints-meta.json"
        main(["train", str(dataset_dir), str(library_path), "--train-fraction", "0.67"])
        metadata = json.loads((dataset_dir / "metadata.json").read_text())
        library = json.loads(library_path.read_text())
        entry = next(
            (
                e
                for e in metadata["entries"]
                if "/".join(
                    (
                        e["viewer"]["condition"]["operating_system"],
                        e["viewer"]["condition"]["browser"],
                    )
                )
                in library
            ),
            None,
        )
        if entry is None:
            pytest.skip("no viewer environment in the calibration half")
        capsys.readouterr()
        # No --environment / --client-ip / --server-ip: all from metadata.
        exit_code = main(
            ["attack", str(dataset_dir / entry["trace_file"]), str(library_path)]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Recovered choices" in output

    def test_attack_directory_prints_aggregate_accuracy(
        self, dataset_dir, tmp_path, capsys
    ):
        library_path = tmp_path / "fingerprints-dir.json"
        main(["train", str(dataset_dir), str(library_path), "--train-fraction", "0.67"])
        capsys.readouterr()
        exit_code = main(
            ["attack", str(dataset_dir / "traces"), str(library_path)]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Recovered choices" in output
        assert "aggregate: attacked" in output
        assert "choice accuracy" in output

    def test_attack_with_unknown_environment_fails_cleanly(self, dataset_dir, tmp_path, capsys):
        library_path = tmp_path / "fingerprints2.json"
        main(["train", str(dataset_dir), str(library_path)])
        metadata = json.loads((dataset_dir / "metadata.json").read_text())
        entry = metadata["entries"][0]
        exit_code = main(
            [
                "attack",
                str(dataset_dir / entry["trace_file"]),
                str(library_path),
                "--environment",
                "amiga/netscape",
                "--client-ip",
                entry["client_ip"],
            ]
        )
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_pcap_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["inspect", str(tmp_path / "missing.pcap")])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err


class TestShardedGeneration:
    """`generate-dataset --shards N` writes independent shard directories."""

    @pytest.fixture(scope="class")
    def sharded_dir(self, tmp_path_factory) -> Path:
        directory = tmp_path_factory.mktemp("cli-sharded")
        exit_code = main(
            [
                "generate-dataset",
                str(directory),
                "--viewers",
                "4",
                "--seed",
                "5",
                "--shards",
                "2",
                "--no-cross-traffic",
            ]
        )
        assert exit_code == 0
        return directory

    def test_shard_layout_on_disk(self, sharded_dir):
        manifest = json.loads((sharded_dir / "shards.json").read_text())
        assert manifest["shard_count"] == 2
        assert manifest["viewer_count"] == 4
        assert manifest["seed"] == 5
        for shard in ("shard-000", "shard-001"):
            metadata = json.loads((sharded_dir / shard / "metadata.json").read_text())
            assert metadata["viewer_count"] == 2
            assert len(list((sharded_dir / shard / "traces").glob("*.pcap"))) == 2

    def test_shard_is_a_standalone_dataset(self, sharded_dir, tmp_path, capsys):
        # A single shard trains and gets attacked like any saved dataset.
        library_path = tmp_path / "shard-fingerprints.json"
        exit_code = main(["train", str(sharded_dir / "shard-000"), str(library_path)])
        assert exit_code == 0
        capsys.readouterr()
        exit_code = main(
            ["attack", str(sharded_dir / "shard-000" / "traces"), str(library_path)]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "aggregate: attacked" in output


class TestResumableGenerationAndShardedTraining:
    """`--resume` repairs interrupted runs; `train --sharded` folds shards in."""

    @pytest.fixture(scope="class")
    def sharded_dir(self, tmp_path_factory) -> Path:
        directory = tmp_path_factory.mktemp("cli-resume")
        exit_code = main(
            [
                "generate-dataset",
                str(directory),
                "--viewers",
                "4",
                "--seed",
                "5",
                "--shards",
                "2",
                "--no-cross-traffic",
            ]
        )
        assert exit_code == 0
        return directory

    def test_resume_requires_shards(self, tmp_path, capsys):
        exit_code = main(
            ["generate-dataset", str(tmp_path), "--viewers", "2", "--resume"]
        )
        assert exit_code == 1
        assert "--shards" in capsys.readouterr().err

    def test_resume_repairs_a_damaged_shard(self, sharded_dir, capsys):
        reference = (sharded_dir / "shard-001" / "metadata.json").read_bytes()
        (sharded_dir / "shard-001" / "metadata.json").unlink()
        exit_code = main(
            [
                "generate-dataset",
                str(sharded_dir),
                "--viewers",
                "4",
                "--seed",
                "5",
                "--shards",
                "2",
                "--no-cross-traffic",
                "--resume",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "shard-000: viewers=2 [skipped]" in output
        assert "shard-001: viewers=2 [quarantined+generated]" in output
        assert (sharded_dir / "shard-001" / "metadata.json").read_bytes() == reference

    def test_train_sharded_then_attack(self, sharded_dir, tmp_path, capsys):
        library_path = tmp_path / "sharded-fingerprints.json"
        exit_code = main(
            ["train", str(sharded_dir), str(library_path), "--sharded"]
        )
        assert exit_code == 0
        assert json.loads(library_path.read_text())
        capsys.readouterr()
        exit_code = main(
            ["attack", str(sharded_dir / "shard-001" / "traces"), str(library_path)]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "aggregate: attacked" in output

    def test_train_on_sharded_root_suggests_the_flag(
        self, sharded_dir, tmp_path, capsys
    ):
        exit_code = main(["train", str(sharded_dir), str(tmp_path / "lib.json")])
        assert exit_code == 1
        assert "--sharded" in capsys.readouterr().err

    def test_train_sharded_rejects_train_fraction(
        self, sharded_dir, tmp_path, capsys
    ):
        exit_code = main(
            [
                "train",
                str(sharded_dir),
                str(tmp_path / "lib.json"),
                "--sharded",
                "--train-fraction",
                "0.5",
            ]
        )
        assert exit_code == 1
        assert "--train-fraction" in capsys.readouterr().err

    def test_reproduce_dataset_drives_the_headline_experiment(
        self, sharded_dir, capsys
    ):
        exit_code = main(
            ["reproduce", "--dataset", str(sharded_dir), "--quick"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "choice recovery over" in output
        assert "WORST CASE" in output

    def test_reproduce_dataset_rejects_other_experiments(self, sharded_dir, capsys):
        exit_code = main(
            ["reproduce", "--experiment", "table1", "--dataset", str(sharded_dir)]
        )
        assert exit_code == 1
        assert "headline" in capsys.readouterr().err


class TestDistributedGeneration:
    """--only-shards / --shard-workers / stitch / merge-fingerprints."""

    @pytest.fixture(scope="class")
    def split_roots(self, tmp_path_factory) -> tuple[Path, Path]:
        machine_a = tmp_path_factory.mktemp("cli-machine-a")
        machine_b = tmp_path_factory.mktemp("cli-machine-b")
        for root, selection in ((machine_a, "0"), (machine_b, "1")):
            exit_code = main(
                [
                    "generate-dataset",
                    str(root),
                    "--viewers",
                    "4",
                    "--seed",
                    "5",
                    "--shards",
                    "2",
                    "--only-shards",
                    selection,
                    "--no-cross-traffic",
                ]
            )
            assert exit_code == 0
        return machine_a, machine_b

    @pytest.fixture(scope="class")
    def stitched_dir(self, split_roots, tmp_path_factory) -> Path:
        import shutil

        machine_a, machine_b = split_roots
        root = tmp_path_factory.mktemp("cli-stitched")
        shutil.copytree(machine_a / "shard-000", root / "shard-000")
        shutil.copytree(machine_b / "shard-001", root / "shard-001")
        exit_code = main(["stitch", str(root)])
        assert exit_code == 0
        return root

    def test_only_shards_writes_just_the_selection(self, split_roots, capsys):
        machine_a, _machine_b = split_roots
        assert (machine_a / "shard-000" / "metadata.json").exists()
        assert not (machine_a / "shard-001").exists()
        assert not (machine_a / "shards.json").exists()

    def test_only_shards_requires_shards(self, tmp_path, capsys):
        exit_code = main(
            ["generate-dataset", str(tmp_path), "--viewers", "2", "--only-shards", "0"]
        )
        assert exit_code == 1
        assert "--shards" in capsys.readouterr().err

    def test_bad_selection_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(
            [
                "generate-dataset",
                str(tmp_path),
                "--viewers",
                "4",
                "--shards",
                "2",
                "--only-shards",
                "7",
            ]
        )
        assert exit_code == 1
        assert "out of range" in capsys.readouterr().err

    def test_shard_workers_requires_shards(self, tmp_path, capsys):
        exit_code = main(
            ["generate-dataset", str(tmp_path), "--viewers", "2", "--shard-workers", "2"]
        )
        assert exit_code == 1
        assert "--shards" in capsys.readouterr().err

    def test_stitch_publishes_manifest(self, stitched_dir):
        manifest = json.loads((stitched_dir / "shards.json").read_text())
        assert manifest["shard_count"] == 2
        assert manifest["viewer_count"] == 4
        assert manifest["seed"] == 5

    def test_stitch_of_non_dataset_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["stitch", str(tmp_path)])
        assert exit_code == 1
        assert "no shard-NNN directories" in capsys.readouterr().err

    def test_subset_train_plus_merge_equals_single_machine(
        self, split_roots, stitched_dir, tmp_path, capsys
    ):
        machine_a, machine_b = split_roots
        states = []
        for index, machine in enumerate((machine_a, machine_b)):
            library = tmp_path / f"lib-{index}.json"
            state = tmp_path / f"state-{index}.json"
            exit_code = main(
                [
                    "train",
                    str(machine),
                    str(library),
                    "--sharded",
                    "--save-state",
                    str(state),
                ]
            )
            assert exit_code == 0
            assert state.exists()
            states.append(state)
        single_library = tmp_path / "lib-single.json"
        assert main(["train", str(stitched_dir), str(single_library), "--sharded"]) == 0
        merged_library = tmp_path / "lib-merged.json"
        exit_code = main(
            [
                "merge-fingerprints",
                *[str(state) for state in states],
                "-o",
                str(merged_library),
            ]
        )
        assert exit_code == 0
        assert merged_library.read_bytes() == single_library.read_bytes()

    def test_save_state_requires_sharded(self, stitched_dir, tmp_path, capsys):
        exit_code = main(
            [
                "train",
                str(stitched_dir / "shard-000"),
                str(tmp_path / "lib.json"),
                "--save-state",
                str(tmp_path / "state.json"),
            ]
        )
        assert exit_code == 1
        assert "--sharded" in capsys.readouterr().err

    def test_merge_rejects_a_library_file(self, tmp_path, capsys):
        library_path = tmp_path / "library.json"
        library_path.write_text("{}")
        exit_code = main(
            ["merge-fingerprints", str(library_path), "-o", str(tmp_path / "out.json")]
        )
        assert exit_code == 1
        assert "save-state" in capsys.readouterr().err


class TestReproduceCommand:
    def test_quick_figure1_reproduction(self, capsys):
        exit_code = main(["reproduce", "--experiment", "figure1", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 1" in output
        assert "matches the paper's description: True" in output

    def test_quick_table1_reproduction(self, capsys):
        exit_code = main(["reproduce", "--experiment", "table1", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Operating System" in output
