"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.features import ClientRecord, LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2
from repro.core.fingerprint import LengthBand, RecordLengthFingerprint
from repro.core.inference import infer_choices
from repro.defenses.padding import PadToConstant, PadToMultiple
from repro.defenses.splitting import SplitRecords
from repro.ml.interval import IntervalClassifier
from repro.ml.metrics import ConfusionMatrix, accuracy_score
from repro.net.headers import IPv4Header, TCPHeader, checksum16, format_ipv4, parse_ipv4
from repro.net.tcp import segment_payload
from repro.tls.ciphers import CIPHER_SUITES
from repro.tls.records import ContentType, TLSRecord, parse_records
from repro.utils.histogram import Histogram, LengthBin
from repro.utils.rng import RandomSource, derive_seed

# -- TLS record framing -------------------------------------------------------


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=20),
    content=st.sampled_from(list(ContentType)),
)
@settings(max_examples=50, deadline=None)
def test_tls_stream_roundtrip(sizes, content):
    """Any sequence of records serializes and parses back identically."""
    records = [
        TLSRecord(content_type=content, version=0x0303, ciphertext=bytes([i % 256]) * size)
        for i, size in enumerate(sizes)
    ]
    stream = b"".join(record.serialize() for record in records)
    assert parse_records(stream) == records


@given(plaintext_len=st.integers(min_value=1, max_value=16_384))
@settings(max_examples=100, deadline=None)
def test_cipher_expansion_is_monotone_and_bounded(plaintext_len):
    """Ciphertext is never shorter than the plaintext and overhead is bounded."""
    for cipher in CIPHER_SUITES.values():
        ciphertext_len = cipher.ciphertext_length(plaintext_len)
        assert ciphertext_len >= plaintext_len
        assert ciphertext_len - plaintext_len <= 64


@given(
    plaintext=st.binary(min_size=1, max_size=2048),
    sequence=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=50, deadline=None)
def test_encrypt_length_matches_model(plaintext, sequence):
    cipher = CIPHER_SUITES["TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"]
    assert len(cipher.encrypt(plaintext, sequence, "k")) == cipher.ciphertext_length(len(plaintext))


# -- packet substrate ----------------------------------------------------------


@given(
    octets=st.lists(st.integers(min_value=0, max_value=255), min_size=4, max_size=4)
)
def test_ipv4_address_roundtrip(octets):
    address = ".".join(str(o) for o in octets)
    assert format_ipv4(parse_ipv4(address)) == address


@given(payload=st.binary(min_size=0, max_size=5000), mss=st.integers(min_value=1, max_value=1500))
@settings(max_examples=50, deadline=None)
def test_segmentation_reassembles_exactly(payload, mss):
    segments = segment_payload(payload, mss)
    assert b"".join(segments) == payload
    assert all(0 < len(segment) <= mss for segment in segments)


@given(data=st.binary(min_size=0, max_size=200))
def test_checksum_is_16_bit(data):
    assert 0 <= checksum16(data) <= 0xFFFF


@given(
    total_length=st.integers(min_value=20, max_value=1500),
    identification=st.integers(min_value=0, max_value=0xFFFF),
)
@settings(max_examples=50, deadline=None)
def test_ipv4_header_roundtrip(total_length, identification):
    header = IPv4Header("10.1.2.3", "192.0.2.9", total_length, identification)
    parsed, _ = IPv4Header.parse(header.serialize())
    assert parsed.total_length == total_length
    assert parsed.identification == identification


# -- RNG determinism -----------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_derive_seed_deterministic_and_in_range(seed, name):
    assert derive_seed(seed, name) == derive_seed(seed, name)
    assert 0 <= derive_seed(seed, name) < 2**63


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    center=st.integers(min_value=100, max_value=5000),
    jitter=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_jittered_draws_stay_in_range(seed, center, jitter):
    rng = RandomSource(seed)
    for _ in range(10):
        value = rng.jittered(center, jitter)
        assert center - jitter <= value <= center + jitter


# -- histogram / bands ---------------------------------------------------------


@given(
    values=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=200)
)
@settings(max_examples=50, deadline=None)
def test_histogram_percentages_sum_to_100(values):
    bins = [LengthBin(None, 2000), LengthBin(2001, 5000), LengthBin(5001, None)]
    histogram = Histogram(bins=bins, categories=["x"])
    histogram.observe_many(values, "x")
    assert sum(histogram.percentages("x")) == pytest.approx(100.0)
    assert histogram.total("x") == len(values)


@given(
    values=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=50),
    margin=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=50, deadline=None)
def test_band_from_values_always_contains_values(values, margin):
    band = LengthBand.from_values(values, margin=margin)
    assert all(band.contains(value) for value in values)


@given(
    type1=st.lists(st.integers(min_value=2000, max_value=2100), min_size=1, max_size=30),
    type2=st.lists(st.integers(min_value=3000, max_value=3100), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_fingerprint_classifies_training_data_correctly(type1, type2):
    records = [
        ClientRecord(timestamp=float(i), wire_length=length, content_type=23, label=LABEL_TYPE1)
        for i, length in enumerate(type1)
    ] + [
        ClientRecord(
            timestamp=float(i + 100), wire_length=length, content_type=23, label=LABEL_TYPE2
        )
        for i, length in enumerate(type2)
    ]
    fingerprint = RecordLengthFingerprint.learn("env", records, margin=2)
    for record in records:
        assert fingerprint.classify_length(record.wire_length) == record.label


# -- inference invariants --------------------------------------------------------


_LABEL_STRATEGY = st.lists(
    st.sampled_from([LABEL_TYPE1, LABEL_TYPE2, LABEL_OTHER]), min_size=1, max_size=60
)


@given(labels=_LABEL_STRATEGY)
@settings(max_examples=100, deadline=None)
def test_inference_counts_are_consistent(labels):
    records = [
        ClientRecord(timestamp=float(i), wire_length=1000 + i, content_type=23)
        for i in range(len(labels))
    ]
    inferred = infer_choices(records, labels)
    type1_count = labels.count(LABEL_TYPE1)
    # Every question the attack reports is backed by at least one JSON record,
    # and the number of questions never exceeds type1 count plus orphan type2 runs.
    assert inferred.choice_count <= labels.count(LABEL_TYPE1) + labels.count(LABEL_TYPE2)
    assert inferred.choice_count >= type1_count
    assert inferred.non_default_count <= labels.count(LABEL_TYPE2)
    # Timestamps of inferred questions are non-decreasing.
    times = [event.question_shown_at for event in inferred.events]
    assert times == sorted(times)


# -- defences ---------------------------------------------------------------------


_RECORD_STRATEGY = st.lists(
    st.tuples(
        st.integers(min_value=30, max_value=6000),
        st.sampled_from([LABEL_TYPE1, LABEL_TYPE2, LABEL_OTHER]),
    ),
    min_size=1,
    max_size=50,
)


def _records_from(spec):
    return [
        ClientRecord(timestamp=float(i), wire_length=length, content_type=23, label=label)
        for i, (length, label) in enumerate(spec)
    ]


@given(spec=_RECORD_STRATEGY, block=st.integers(min_value=1, max_value=1024))
@settings(max_examples=50, deadline=None)
def test_padding_never_shrinks_records(spec, block):
    records = _records_from(spec)
    defended = PadToMultiple(block).transform(records)
    assert len(defended) == len(records)
    for original, padded in zip(records, defended):
        assert padded.wire_length >= original.wire_length
        assert padded.wire_length % block == 0 or not original.is_application_data


@given(spec=_RECORD_STRATEGY, target=st.integers(min_value=64, max_value=8192))
@settings(max_examples=50, deadline=None)
def test_constant_padding_is_idempotent(spec, target):
    records = _records_from(spec)
    defense = PadToConstant(target)
    once = defense.transform(records)
    twice = defense.transform(once)
    assert [r.wire_length for r in once] == [r.wire_length for r in twice]


@given(spec=_RECORD_STRATEGY, parts=st.integers(min_value=2, max_value=6))
@settings(max_examples=50, deadline=None)
def test_splitting_preserves_time_order_and_grows_count(spec, parts):
    records = _records_from(spec)
    defended = SplitRecords(parts=parts, min_length_to_split=1800).transform(records)
    assert len(defended) >= len(records)
    timestamps = [record.timestamp for record in defended]
    assert timestamps == sorted(timestamps)


# -- ML invariants -----------------------------------------------------------------


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=10_000), min_size=4, max_size=100)
)
@settings(max_examples=50, deadline=None)
def test_interval_classifier_perfect_on_single_class(lengths):
    features = np.asarray(lengths, dtype=float).reshape(-1, 1)
    labels = ["only"] * len(lengths)
    classifier = IntervalClassifier().fit(features, labels)
    assert list(classifier.predict(features)) == labels


@given(
    labels=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_confusion_matrix_total_and_accuracy_bounds(labels):
    predictions = list(reversed(labels))
    matrix = ConfusionMatrix.from_predictions(labels, predictions)
    assert matrix.total == len(labels)
    assert 0.0 <= matrix.accuracy <= 1.0
    assert matrix.accuracy == pytest.approx(accuracy_score(labels, predictions))
