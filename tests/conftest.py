"""Shared fixtures.

Simulated sessions are comparatively expensive (hundreds of milliseconds
each), so anything reusable is session-scoped and derived from fixed seeds —
the library is fully deterministic, so sharing fixtures does not couple tests.
"""

from __future__ import annotations

import pytest

from repro.client.profiles import OperationalCondition, figure2_conditions
from repro.client.viewer import ViewerBehavior
from repro.core.pipeline import WhiteMirrorAttack
from repro.narrative.bandersnatch import (
    build_bandersnatch_script,
    build_minimal_interactive_script,
)
from repro.streaming.session import SessionConfig, simulate_session


@pytest.fixture(scope="session")
def minimal_graph():
    """The two-question script of the Figure 1 walkthrough."""
    return build_minimal_interactive_script()


@pytest.fixture(scope="session")
def study_graph():
    """The short-segment Bandersnatch-like script used for fast simulations."""
    return build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )


@pytest.fixture(scope="session")
def ubuntu_condition() -> OperationalCondition:
    """The (Desktop, Firefox, Ethernet, Ubuntu) condition of Figure 2."""
    return figure2_conditions()[0]


@pytest.fixture(scope="session")
def windows_condition() -> OperationalCondition:
    """The (Desktop, Firefox, Ethernet, Windows) condition of Figure 2."""
    return figure2_conditions()[1]


@pytest.fixture(scope="session")
def noisy_condition() -> OperationalCondition:
    """The adversarial corner: wireless connection during the evening peak."""
    return OperationalCondition("linux", "desktop", "firefox", "wireless", "night")


@pytest.fixture(scope="session")
def default_behavior() -> ViewerBehavior:
    """A neutral viewer used when the behaviour itself is not under test."""
    return ViewerBehavior("20-25", "undisclosed", "undisclosed", "happy")


@pytest.fixture(scope="session")
def ubuntu_session(study_graph, ubuntu_condition, default_behavior):
    """One full simulated session under the Ubuntu/Firefox condition."""
    return simulate_session(
        study_graph, ubuntu_condition, default_behavior, seed=1001, session_id="fixture-ubuntu"
    )


@pytest.fixture(scope="session")
def windows_session(study_graph, windows_condition, default_behavior):
    """One full simulated session under the Windows/Firefox condition."""
    return simulate_session(
        study_graph, windows_condition, default_behavior, seed=1002, session_id="fixture-windows"
    )


@pytest.fixture(scope="session")
def minimal_session(minimal_graph, ubuntu_condition, default_behavior):
    """A quick two-question session with forced (default, non-default) choices."""
    return simulate_session(
        minimal_graph,
        ubuntu_condition,
        default_behavior,
        seed=1003,
        config=SessionConfig(cross_traffic_enabled=False),
        forced_choices=[True, False],
        session_id="fixture-minimal",
    )


@pytest.fixture(scope="session")
def training_sessions(study_graph, ubuntu_condition, windows_condition, default_behavior):
    """Labelled sessions under both Figure 2 conditions, for attacker training."""
    sessions = []
    for index, condition in enumerate((ubuntu_condition, windows_condition)):
        for offset in range(2):
            sessions.append(
                simulate_session(
                    study_graph,
                    condition,
                    default_behavior,
                    seed=2000 + 10 * index + offset,
                    session_id=f"fixture-train-{index}-{offset}",
                )
            )
    return sessions


@pytest.fixture(scope="session")
def trained_attack(study_graph, training_sessions) -> WhiteMirrorAttack:
    """A White Mirror attack trained on the shared training sessions."""
    attack = WhiteMirrorAttack(graph=study_graph)
    attack.train(training_sessions)
    return attack
