"""Tests for the pcap reader/writer."""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import PcapError
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.packet import Direction, Packet
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap


@pytest.fixture()
def sample_frames() -> list[tuple[float, bytes]]:
    five_tuple = FiveTuple(
        client=Endpoint("192.168.1.23", 51742), server=Endpoint("198.51.100.7", 443)
    )
    frames = []
    for index in range(5):
        packet = Packet(
            timestamp=float(index) + 0.125,
            direction=Direction.CLIENT_TO_SERVER,
            five_tuple=five_tuple,
            payload=bytes([index]) * (10 + index),
            sequence_number=index * 100 + 1,
        )
        frames.append((packet.timestamp, packet.serialize_frame()))
    return frames


class TestPcapRoundTrip:
    def test_write_and_read_back(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        count = write_pcap(path, sample_frames)
        assert count == 5
        packets = read_pcap(path)
        assert len(packets) == 5
        for (timestamp, frame), packet in zip(sample_frames, packets):
            assert packet.frame == frame
            assert packet.timestamp == pytest.approx(timestamp, abs=1e-5)
            assert packet.original_length == len(frame)

    def test_global_header_magic_and_linktype(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        raw = path.read_bytes()
        magic, _major, _minor, _tz, _sig, _snap, linktype = struct.unpack("<IHHiIII", raw[:24])
        assert magic == 0xA1B2C3D4
        assert linktype == 1  # Ethernet

    def test_snaplen_truncates_but_keeps_original_length(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        with PcapWriter(path, snaplen=40) as writer:
            for timestamp, frame in sample_frames:
                writer.write(timestamp, frame)
        for packet, (_, frame) in zip(read_pcap(path), sample_frames):
            assert packet.captured_length == 40
            assert packet.original_length == len(frame)

    def test_writer_requires_context_manager(self, tmp_path):
        writer = PcapWriter(tmp_path / "x.pcap")
        with pytest.raises(PcapError):
            writer.write(0.0, b"frame")

    def test_writer_rejects_empty_frame(self, tmp_path):
        with PcapWriter(tmp_path / "x.pcap") as writer:
            with pytest.raises(PcapError):
                writer.write(0.0, b"")


class TestPcapErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PcapError):
            read_pcap(tmp_path / "does-not-exist.pcap")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_truncated_packet_body(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        raw = path.read_bytes()
        (tmp_path / "cut.pcap").write_bytes(raw[:-5])
        with pytest.raises(PcapError):
            read_pcap(tmp_path / "cut.pcap")

    def test_too_short_file(self, tmp_path):
        path = tmp_path / "tiny.pcap"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_iterating_reader_directly(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        assert len(list(PcapReader(path))) == 5
