"""Tests for the pcap reader/writer."""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import PcapError
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.packet import Direction, Packet
from repro.net.pcap import (
    LINKTYPE_ETHERNET,
    PCAP_MAGIC,
    PcapReader,
    PcapWriter,
    read_pcap,
    read_pcap_columns,
    write_pcap,
)


@pytest.fixture()
def sample_frames() -> list[tuple[float, bytes]]:
    five_tuple = FiveTuple(
        client=Endpoint("192.168.1.23", 51742), server=Endpoint("198.51.100.7", 443)
    )
    frames = []
    for index in range(5):
        packet = Packet(
            timestamp=float(index) + 0.125,
            direction=Direction.CLIENT_TO_SERVER,
            five_tuple=five_tuple,
            payload=bytes([index]) * (10 + index),
            sequence_number=index * 100 + 1,
        )
        frames.append((packet.timestamp, packet.serialize_frame()))
    return frames


class TestPcapRoundTrip:
    def test_write_and_read_back(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        count = write_pcap(path, sample_frames)
        assert count == 5
        packets = read_pcap(path)
        assert len(packets) == 5
        for (timestamp, frame), packet in zip(sample_frames, packets):
            assert packet.frame == frame
            assert packet.timestamp == pytest.approx(timestamp, abs=1e-5)
            assert packet.original_length == len(frame)

    def test_global_header_magic_and_linktype(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        raw = path.read_bytes()
        magic, _major, _minor, _tz, _sig, _snap, linktype = struct.unpack("<IHHiIII", raw[:24])
        assert magic == 0xA1B2C3D4
        assert linktype == 1  # Ethernet

    def test_snaplen_truncates_but_keeps_original_length(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        with PcapWriter(path, snaplen=40) as writer:
            for timestamp, frame in sample_frames:
                writer.write(timestamp, frame)
        for packet, (_, frame) in zip(read_pcap(path), sample_frames):
            assert packet.captured_length == 40
            assert packet.original_length == len(frame)

    def test_writer_requires_context_manager(self, tmp_path):
        writer = PcapWriter(tmp_path / "x.pcap")
        with pytest.raises(PcapError):
            writer.write(0.0, b"frame")

    def test_writer_rejects_empty_frame(self, tmp_path):
        with PcapWriter(tmp_path / "x.pcap") as writer:
            with pytest.raises(PcapError):
                writer.write(0.0, b"")


def _write_big_endian_pcap(path, packets) -> None:
    """Write a classic pcap in the *opposite* byte order, as a big-endian
    capture host would: magic stored as ``>I`` reads back byte-swapped."""
    with open(path, "wb") as handle:
        handle.write(
            struct.pack(">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65_535, LINKTYPE_ETHERNET)
        )
        for timestamp, frame in packets:
            seconds = int(timestamp)
            microseconds = int(round((timestamp - seconds) * 1_000_000))
            handle.write(
                struct.pack(">IIII", seconds, microseconds, len(frame), len(frame))
            )
            handle.write(frame)


class TestByteSwappedMagic:
    def test_round_trip_matches_native_order(self, tmp_path, sample_frames):
        native = tmp_path / "native.pcap"
        swapped = tmp_path / "swapped.pcap"
        write_pcap(native, sample_frames)
        _write_big_endian_pcap(swapped, sample_frames)
        native_packets = read_pcap(native)
        swapped_packets = read_pcap(swapped)
        assert len(swapped_packets) == len(sample_frames)
        for ours, theirs in zip(native_packets, swapped_packets):
            assert theirs.frame == ours.frame
            assert theirs.timestamp == ours.timestamp
            assert theirs.original_length == ours.original_length

    def test_columns_match_native_order(self, tmp_path, sample_frames):
        native = tmp_path / "native.pcap"
        swapped = tmp_path / "swapped.pcap"
        write_pcap(native, sample_frames)
        _write_big_endian_pcap(swapped, sample_frames)
        native_columns = read_pcap_columns(native)
        swapped_columns = read_pcap_columns(swapped)
        assert swapped_columns.timestamps.tolist() == native_columns.timestamps.tolist()
        assert (
            swapped_columns.captured_lengths.tolist()
            == native_columns.captured_lengths.tolist()
        )
        for index in range(len(native_columns)):
            assert swapped_columns.frame(index) == native_columns.frame(index)

    def test_truncated_body_in_swapped_file(self, tmp_path, sample_frames):
        path = tmp_path / "swapped.pcap"
        _write_big_endian_pcap(path, sample_frames)
        cut = tmp_path / "cut.pcap"
        cut.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(PcapError, match="truncated packet body"):
            read_pcap(cut)


class TestColumnarReader:
    def test_columns_agree_with_packet_iterator(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        columns = read_pcap_columns(path)
        packets = read_pcap(path)
        assert columns.packet_count == len(packets) == len(sample_frames)
        for index, packet in enumerate(packets):
            assert columns.timestamps[index] == packet.timestamp
            assert int(columns.captured_lengths[index]) == packet.captured_length
            assert int(columns.original_lengths[index]) == packet.original_length
            assert bytes(columns.frame(index)) == packet.frame

    def test_frames_are_zero_copy_views(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        columns = read_pcap_columns(path)
        frame = columns.frame(0)
        assert isinstance(frame, memoryview)
        # The view windows the shared file mapping, not a per-frame copy.
        assert frame.obj is columns.data.obj
        for packet in PcapReader(path).read():
            assert isinstance(packet.frame, memoryview)

    def test_read_pcap_returns_owned_bytes(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        packets = read_pcap(path)
        assert all(isinstance(packet.frame, bytes) for packet in packets)

    def test_empty_packet_section(self, tmp_path):
        path = tmp_path / "empty.pcap"
        with PcapWriter(path):
            pass
        columns = read_pcap_columns(path)
        assert columns.packet_count == 0
        assert read_pcap(path) == []

    def test_snaplen_reflected_in_columns(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        with PcapWriter(path, snaplen=40) as writer:
            for timestamp, frame in sample_frames:
                writer.write(timestamp, frame)
        columns = read_pcap_columns(path)
        assert columns.captured_lengths.tolist() == [40] * len(sample_frames)
        assert columns.original_lengths.tolist() == [
            len(frame) for _, frame in sample_frames
        ]


class TestPcapErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PcapError):
            read_pcap(tmp_path / "does-not-exist.pcap")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.pcap"
        path.write_bytes(b"")
        with pytest.raises(PcapError, match="too short"):
            read_pcap(path)

    def test_truncated_packet_header(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        raw = path.read_bytes()
        # Keep the global header plus half of the first packet header.
        (tmp_path / "cut.pcap").write_bytes(raw[: 24 + 8])
        with pytest.raises(PcapError, match="truncated packet header"):
            read_pcap(tmp_path / "cut.pcap")

    def test_truncated_header_via_columns(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        (tmp_path / "cut.pcap").write_bytes(path.read_bytes()[: 24 + 8])
        with pytest.raises(PcapError, match="truncated packet header"):
            read_pcap_columns(tmp_path / "cut.pcap")

    def test_truncated_body_via_columns(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        (tmp_path / "cut.pcap").write_bytes(path.read_bytes()[:-5])
        with pytest.raises(PcapError, match="truncated packet body"):
            read_pcap_columns(tmp_path / "cut.pcap")

    def test_unsupported_link_type(self, tmp_path):
        path = tmp_path / "lo.pcap"
        path.write_bytes(struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65_535, 101))
        with pytest.raises(PcapError, match="unsupported link type"):
            read_pcap(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_truncated_packet_body(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        raw = path.read_bytes()
        (tmp_path / "cut.pcap").write_bytes(raw[:-5])
        with pytest.raises(PcapError):
            read_pcap(tmp_path / "cut.pcap")

    def test_too_short_file(self, tmp_path):
        path = tmp_path / "tiny.pcap"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(PcapError):
            read_pcap(path)

    def test_iterating_reader_directly(self, tmp_path, sample_frames):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_frames)
        assert len(list(PcapReader(path))) == 5
