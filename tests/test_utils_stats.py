"""Tests for descriptive statistics helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.stats import (
    jains_fairness,
    mean,
    median,
    percentile,
    proportions,
    relative_error,
    stddev,
    summarize,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_median_odd(self):
        assert median([5, 1, 3]) == pytest.approx(3)

    def test_stddev_constant_is_zero(self):
        assert stddev([4, 4, 4]) == pytest.approx(0.0)

    def test_percentile(self):
        assert percentile(range(101), 95) == pytest.approx(95.0)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            percentile([1, 2], 150)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.p05 <= summary.median <= summary.p95

    def test_as_dict_keys(self):
        data = summarize([1.0, 2.0]).as_dict()
        assert set(data) == {"count", "min", "max", "mean", "median", "stddev", "p05", "p95"}


class TestProportionsAndErrors:
    def test_proportions_sum_to_one(self):
        result = proportions({"a": 3, "b": 1})
        assert sum(result.values()) == pytest.approx(1.0)
        assert result["a"] == pytest.approx(0.75)

    def test_proportions_zero_total_rejected(self):
        with pytest.raises(ConfigurationError):
            proportions({"a": 0})

    def test_relative_error(self):
        assert relative_error(96.0, 100.0) == pytest.approx(0.04)

    def test_relative_error_zero_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_error(1.0, 0.0)

    def test_jains_fairness_equal_shares(self):
        assert jains_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_jains_fairness_unequal(self):
        assert jains_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_jains_fairness_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            jains_fairness([-1, 2])
