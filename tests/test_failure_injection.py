"""Failure-injection tests: incomplete captures, lossy observation points.

A real observation point drops packets.  The feature extractor must never
crash on a gapped TCP stream, and the attack should degrade gracefully rather
than collapse when parts of the capture are missing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.features import LABEL_TYPE1, LABEL_TYPE2, extract_client_records
from repro.exceptions import AttackError
from repro.net.capture import CapturedTrace
from repro.net.packet import Direction
from repro.utils.rng import RandomSource


def _drop_packets(trace: CapturedTrace, drop_fraction: float, seed: int) -> CapturedTrace:
    """A copy of the trace with a random fraction of packets missing."""
    rng = RandomSource(seed, ("drop",))
    kept = tuple(
        packet for packet in trace.packets if not rng.bernoulli(drop_fraction)
    )
    if not kept:
        kept = trace.packets[:1]
    return CapturedTrace(packets=kept, client_ip=trace.client_ip, server_ip=trace.server_ip)


class TestGappedCaptures:
    @pytest.mark.parametrize("drop_fraction", [0.01, 0.05, 0.2])
    def test_extraction_never_crashes_on_gapped_streams(self, ubuntu_session, drop_fraction):
        lossy = _drop_packets(ubuntu_session.trace, drop_fraction, seed=drop_fraction.__hash__() % 1000)
        try:
            records = extract_client_records(lossy, server_ip=lossy.server_ip)
        except AttackError as error:
            # Only acceptable failure: the capture lost so much that no client
            # record survived at all.
            assert "no client-side TLS records" in str(error)
            return
        assert all(record.wire_length > 5 for record in records)

    def test_light_loss_keeps_most_state_reports(self, ubuntu_session):
        lossy = _drop_packets(ubuntu_session.trace, drop_fraction=0.02, seed=3)
        records = extract_client_records(lossy, server_ip=lossy.server_ip)
        observed_reports = [
            record for record in records if record.label in (LABEL_TYPE1, LABEL_TYPE2)
        ]
        original_reports = [
            record
            for record in extract_client_records(
                ubuntu_session.trace, server_ip=ubuntu_session.trace.server_ip
            )
            if record.label in (LABEL_TYPE1, LABEL_TYPE2)
        ]
        assert len(observed_reports) >= 0.7 * len(original_reports)

    def test_attack_degrades_gracefully_under_loss(self, trained_attack, ubuntu_session):
        lossy = _drop_packets(ubuntu_session.trace, drop_fraction=0.02, seed=9)
        result = trained_attack.attack_trace(lossy, condition_key="linux/firefox")
        truth = ubuntu_session.ground_truth_pattern
        recovered = result.recovered_pattern
        correct = sum(
            1
            for index, actual in enumerate(truth)
            if index < len(recovered) and recovered[index] == actual
        )
        assert correct >= 6  # most choices survive a 2 % capture loss

    def test_downlink_only_loss_is_harmless(self, trained_attack, ubuntu_session):
        """Losing server-to-client packets cannot affect a client-side side-channel."""
        kept = tuple(
            packet
            for index, packet in enumerate(ubuntu_session.trace.packets)
            if packet.direction is Direction.CLIENT_TO_SERVER or index % 5 != 0
        )
        lossy = CapturedTrace(
            packets=kept,
            client_ip=ubuntu_session.trace.client_ip,
            server_ip=ubuntu_session.trace.server_ip,
        )
        result = trained_attack.attack_trace(lossy, condition_key="linux/firefox")
        assert result.recovered_pattern == ubuntu_session.ground_truth_pattern


class TestGappedStreamProperties:
    @given(drop_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_any_drop_pattern_is_survivable(self, minimal_session, drop_seed):
        lossy = _drop_packets(minimal_session.trace, drop_fraction=0.1, seed=drop_seed)
        try:
            records = extract_client_records(lossy, server_ip=lossy.server_ip)
        except AttackError as error:
            assert "no client-side TLS records" in str(error)
            return
        timestamps = [record.timestamp for record in records]
        assert timestamps == sorted(timestamps)
