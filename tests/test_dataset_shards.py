"""Sharded + streaming dataset generation: equivalence with the in-memory path."""

from __future__ import annotations

import json

import pytest

from repro.dataset.collection import iter_collect_dataset
from repro.dataset.iitm import IITMBandersnatchDataset, SummaryAccumulator
from repro.dataset.population import generate_population
from repro.dataset.shards import (
    ShardedDataset,
    ShardSlice,
    ShardSummary,
    generate_sharded_dataset,
    merge_shard_summaries,
    plan_shards,
    shard_dirname,
)
from repro.exceptions import DatasetError
from repro.streaming.session import SessionConfig

SEED = 11
VIEWERS = 4
CONFIG = SessionConfig(cross_traffic_enabled=False)


@pytest.fixture(scope="module")
def in_memory_dataset():
    """The reference: the existing materialise-everything generation path."""
    return IITMBandersnatchDataset.generate(
        viewer_count=VIEWERS, seed=SEED, config=CONFIG
    )


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    """The same population generated as two streamed shards."""
    directory = tmp_path_factory.mktemp("sharded")
    dataset = generate_sharded_dataset(
        directory,
        viewer_count=VIEWERS,
        shard_count=2,
        seed=SEED,
        config=CONFIG,
    )
    return dataset


class TestPlanShards:
    def test_balanced_contiguous_cover(self):
        slices = plan_shards(10, 3)
        assert [s.viewer_count for s in slices] == [4, 3, 3]
        assert slices[0].start == 0
        assert slices[-1].stop == 10
        for previous, current in zip(slices, slices[1:]):
            assert current.start == previous.stop

    def test_deterministic(self):
        assert plan_shards(100, 7) == plan_shards(100, 7)

    def test_single_shard_is_whole_population(self):
        assert plan_shards(5, 1) == [ShardSlice(index=0, start=0, stop=5)]

    def test_dirnames(self):
        assert plan_shards(4, 2)[1].dirname == "shard-001"
        assert shard_dirname(12) == "shard-012"
        with pytest.raises(DatasetError):
            shard_dirname(-1)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(DatasetError):
            plan_shards(0, 1)
        with pytest.raises(DatasetError):
            plan_shards(5, 0)
        with pytest.raises(DatasetError):
            plan_shards(3, 4)


class TestStreamingCollection:
    def test_iter_collect_matches_collect(self, in_memory_dataset):
        viewers = generate_population(VIEWERS, seed=SEED)
        streamed = list(
            iter_collect_dataset(viewers, dataset_seed=SEED, config=CONFIG)
        )
        assert [p.session.fingerprint() for p in streamed] == [
            p.session.fingerprint() for p in in_memory_dataset.points
        ]
        assert tuple(streamed) == in_memory_dataset.points

    def test_parallel_streaming_matches_serial(self, in_memory_dataset):
        viewers = generate_population(VIEWERS, seed=SEED)
        streamed = list(
            iter_collect_dataset(
                viewers, dataset_seed=SEED, config=CONFIG, workers=2, window=2
            )
        )
        assert tuple(streamed) == in_memory_dataset.points


class TestShardedGenerationEquivalence:
    def test_per_viewer_pcaps_byte_identical(
        self, tmp_path, in_memory_dataset, sharded
    ):
        reference_dir = tmp_path / "reference"
        in_memory_dataset.save(reference_dir)
        shard_of = {}
        for summary in sharded.shard_summaries:
            for pcap in (sharded.directory / summary.directory / "traces").glob("*.pcap"):
                shard_of[pcap.name] = pcap
        reference_pcaps = sorted((reference_dir / "traces").glob("*.pcap"))
        assert len(reference_pcaps) == VIEWERS == len(shard_of)
        for reference in reference_pcaps:
            assert reference.read_bytes() == shard_of[reference.name].read_bytes()

    def test_merged_summary_identical_to_in_memory(self, in_memory_dataset, sharded):
        assert sharded.summary() == in_memory_dataset.summary()
        assert merge_shard_summaries(sharded.shard_summaries) == (
            in_memory_dataset.summary()
        )

    def test_shard_membership_never_touches_session_bytes(
        self, tmp_path, in_memory_dataset
    ):
        # A different shard count re-slices the population but regenerates
        # byte-identical sessions (seeds derive from viewer ids alone).
        resharded = generate_sharded_dataset(
            tmp_path / "resharded",
            viewer_count=VIEWERS,
            shard_count=4,
            seed=SEED,
            config=CONFIG,
        )
        assert resharded.shard_count == 4
        assert resharded.summary() == in_memory_dataset.summary()
        patterns = [point.ground_truth_pattern for point in resharded.iter_points()]
        assert patterns == [
            point.ground_truth_choices for point in in_memory_dataset.points
        ]

    def test_streaming_single_directory_matches_save(
        self, tmp_path, in_memory_dataset
    ):
        reference_dir = tmp_path / "reference"
        streamed_dir = tmp_path / "streamed"
        in_memory_dataset.save(reference_dir)
        metadata_path, summary = IITMBandersnatchDataset.generate_streaming(
            streamed_dir, viewer_count=VIEWERS, seed=SEED, config=CONFIG
        )
        assert summary == in_memory_dataset.summary()
        assert metadata_path.read_bytes() == (reference_dir / "metadata.json").read_bytes()
        for reference in sorted((reference_dir / "traces").glob("*.pcap")):
            assert reference.read_bytes() == (
                streamed_dir / "traces" / reference.name
            ).read_bytes()


class TestShardedDatasetLoad:
    def test_load_round_trip(self, sharded):
        loaded = ShardedDataset.load(sharded.directory)
        assert loaded.viewer_count == VIEWERS
        assert loaded.shard_count == 2
        assert loaded.seed == SEED
        assert loaded.summary() == sharded.summary()
        assert loaded.shard_directories() == sharded.shard_directories()

    def test_iter_points_lazy_in_viewer_order(self, sharded, in_memory_dataset):
        loaded = ShardedDataset.load(sharded.directory)
        iterator = loaded.iter_points()
        first = next(iterator)  # parses only the first shard's first pcap
        assert first.viewer.viewer_id == "viewer-000"
        rest = list(iterator)
        points = [first] + rest
        assert [p.viewer.viewer_id for p in points] == [
            p.viewer.viewer_id for p in in_memory_dataset.points
        ]
        assert [p.ground_truth_pattern for p in points] == [
            p.ground_truth_choices for p in in_memory_dataset.points
        ]
        assert [p.trace.packet_count for p in points] == [
            p.session.trace.packet_count for p in in_memory_dataset.points
        ]

    def test_load_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError, match="not a sharded dataset"):
            ShardedDataset.load(tmp_path)

    def test_load_rejects_viewer_count_mismatch(self, tmp_path, sharded):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(sharded.directory, broken)
        manifest = json.loads((broken / "shards.json").read_text())
        manifest["viewer_count"] = 99
        (broken / "shards.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="viewer count"):
            ShardedDataset.load(broken)


class TestShardSummaries:
    def test_round_trip(self):
        summary = ShardSummary(
            index=1,
            directory="shard-001",
            viewer_count=3,
            total_choices=30,
            non_default_choices=7,
            total_packets=1234,
            condition_keys=("a", "b"),
        )
        assert ShardSummary.from_dict(summary.as_dict()) == summary
        assert summary.to_dataset_summary().distinct_conditions == 2

    def test_merge_unions_condition_keys(self):
        shards = [
            ShardSummary(0, "shard-000", 2, 20, 5, 100, ("a", "b")),
            ShardSummary(1, "shard-001", 2, 20, 3, 150, ("b", "c")),
        ]
        merged = merge_shard_summaries(shards)
        assert merged.viewer_count == 4
        assert merged.total_choices == 40
        assert merged.non_default_choices == 8
        assert merged.total_packets == 250
        assert merged.distinct_conditions == 3

    def test_merge_empty_rejected(self):
        with pytest.raises(DatasetError):
            merge_shard_summaries([])

    def test_accumulator_requires_points(self):
        with pytest.raises(DatasetError):
            SummaryAccumulator().summary()

    def test_accumulator_matches_dataset_summary(self, in_memory_dataset):
        accumulator = SummaryAccumulator()
        for point in in_memory_dataset.points:
            accumulator.add(point)
        assert accumulator.summary() == in_memory_dataset.summary()
        assert accumulator.viewer_count == VIEWERS
