"""Service-level tests: the wire API over HTTP, and fleet byte-identity.

The load-bearing assertion of the whole coordinator: a plan distributed
across pull workers — including a worker whose lease expires mid-unit and
is reassigned — publishes a dataset root and merged library byte-identical
to one machine running the plan serially.  (CI repeats the kill-a-worker
variant with real processes and SIGKILL; here the dead worker is simulated
by taking a lease over HTTP and never completing it.)
"""

from __future__ import annotations

import base64
import io
import json
import tarfile
import threading
import urllib.error
import urllib.request

import pytest

from repro.coordinator import Coordinator, FleetPlan, PullWorker
from repro.coordinator import wire
from repro.dataset.format import snapshot_dataset_files
from repro.exceptions import CoordinatorError, LeaseExpired
from repro.jobs import EventBus, JobRunner, Workspace
from repro.jobs.events import EVENT_SCHEMA_VERSION
from repro.jobs.specs import GenerateJob, TrainJob

PLAN = dict(viewers=2, shards=2, seed=9, margin=8, cross_traffic=False)


class Recorder:
    """An event sink that remembers every (kind, data) it sees."""

    def __init__(self) -> None:
        self.events: list[tuple[str, dict]] = []

    def handle(self, event) -> None:
        self.events.append((event.kind, dict(event.data)))

    def kinds(self) -> list[str]:
        return [kind for kind, _data in self.events]


def _post(url: str, path: str, payload: dict | None = None, raw: bytes | None = None):
    body = raw if raw is not None else wire.dump_body(payload or {})
    request = urllib.request.Request(url + path, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.loads(reply.read())


def _get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=30) as reply:
        return json.loads(reply.read())


def _error_of(call):
    with pytest.raises(urllib.error.HTTPError) as caught:
        call()
    payload = json.loads(caught.value.read())
    return caught.value.code, payload["error"]


def _reference_run(root_directory):
    """One machine running the whole plan serially: the gold bytes."""
    workspace = Workspace(root_directory)
    runner = JobRunner(EventBus(), workspace)
    runner.run(
        GenerateJob(
            output="dataset",
            viewers=PLAN["viewers"],
            seed=PLAN["seed"],
            shards=PLAN["shards"],
            cross_traffic=PLAN["cross_traffic"],
        )
    )
    runner.run(
        TrainJob(
            dataset="dataset",
            output="library.json",
            sharded=True,
            margin=PLAN["margin"],
        )
    )
    return root_directory / "dataset", root_directory / "library.json"


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    return _reference_run(tmp_path_factory.mktemp("fleet-reference"))


@pytest.fixture(scope="module")
def fleet_run(tmp_path_factory):
    """Two pull workers draining a coordinator, plus the recorded events."""
    base = tmp_path_factory.mktemp("fleet-run")
    recorder = Recorder()
    coordinator = Coordinator(
        FleetPlan(**PLAN),
        EventBus(recorder),
        root=base / "dataset",
        library=base / "library.json",
        lease_ttl=300.0,
        linger=0.2,
    )
    host, port = coordinator.start()
    url = f"http://{host}:{port}"
    failures: list[BaseException] = []

    def pull(name: str) -> None:
        try:
            PullWorker(
                url,
                EventBus(),
                worker_id=name,
                scratch=base / f"scratch-{name}",
                poll_interval=0.05,
            ).run()
        except BaseException as error:  # noqa: BLE001 - reported by the test
            failures.append(error)

    threads = [
        threading.Thread(target=pull, args=(f"w{index}",)) for index in range(2)
    ]
    for thread in threads:
        thread.start()
    summary = coordinator.serve_until_complete()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures
    return base / "dataset", base / "library.json", summary, recorder


def test_fleet_run_is_byte_identical_to_the_serial_run(reference, fleet_run):
    reference_root, reference_library = reference
    fleet_root, fleet_library, _summary, _recorder = fleet_run
    assert snapshot_dataset_files(fleet_root) == snapshot_dataset_files(
        reference_root
    )
    assert fleet_library.read_bytes() == reference_library.read_bytes()


def test_fleet_run_summary_counts_units_and_workers(fleet_run):
    _root, _library, summary, _recorder = fleet_run
    assert summary["units"] == PLAN["shards"]
    assert 1 <= summary["workers"] <= 2


def test_coordinator_narrates_the_whole_plan(fleet_run):
    _root, _library, _summary, recorder = fleet_run
    kinds = recorder.kinds()
    assert kinds[0] == "serve-started"
    # plan-complete closes publication; a worker's last event-feed flush
    # may still trickle in after it, so order is pinned only up to here.
    assert "plan-complete" in kinds
    assert kinds.index("plan-complete") > kinds.index("unit-complete")
    assert kinds.count("lease-granted") == PLAN["shards"]
    assert kinds.count("unit-complete") == PLAN["shards"]
    # Worker narration was ingested over /v1/events and re-emitted here.
    assert "work-started" in kinds
    assert "generation-started" in kinds
    # Publication reuses the stock stitch/train narration.
    assert "stitch-started" in kinds and "fingerprints" in kinds


def test_state_directory_stays_out_of_the_published_root(fleet_run):
    root, _library, _summary, _recorder = fleet_run
    assert not (root / "ledger.json").exists()
    sibling = root.parent / (root.name + ".coordinator")
    assert (sibling / "ledger.json").exists()


def test_expired_lease_is_reassigned_and_bytes_still_match(
    tmp_path_factory, reference
):
    """A worker dies mid-unit: its lease expires, the unit is redone."""
    reference_root, reference_library = reference
    base = tmp_path_factory.mktemp("fleet-reassign")
    recorder = Recorder()

    # An injected clock makes expiry deterministic: the doomed worker's
    # lease is pushed past its TTL in one step, then time freezes so the
    # survivor's own leases never expire mid-unit.
    now = [1000.0]
    coordinator = Coordinator(
        FleetPlan(**PLAN),
        EventBus(recorder),
        root=base / "dataset",
        library=base / "library.json",
        lease_ttl=60.0,
        linger=0.2,
        clock=lambda: now[0],
    )
    host, port = coordinator.start()
    url = f"http://{host}:{port}"
    # The doomed worker takes a lease and is never heard from again.
    doomed = _post(url, wire.LEASE_PATH, {"worker": "doomed"})
    assert doomed["lease"]["unit"] == "shard-000"
    now[0] += 61.0

    worker = PullWorker(
        url,
        EventBus(),
        worker_id="survivor",
        scratch=base / "scratch",
        poll_interval=0.05,
    )
    thread = threading.Thread(target=worker.run)
    thread.start()
    coordinator.serve_until_complete()
    thread.join(timeout=120)

    assert "lease-reclaimed" in recorder.kinds()
    status = [
        data for kind, data in recorder.events if kind == "lease-reclaimed"
    ][0]
    assert status["worker"] == "doomed"
    assert snapshot_dataset_files(base / "dataset") == snapshot_dataset_files(
        reference_root
    )
    assert (base / "library.json").read_bytes() == reference_library.read_bytes()


# -- wire API pins (no work executed) ---------------------------------------


@pytest.fixture()
def api(tmp_path):
    recorder = Recorder()
    coordinator = Coordinator(
        FleetPlan(**PLAN),
        EventBus(recorder),
        root=tmp_path / "dataset",
        library=tmp_path / "library.json",
        lease_ttl=300.0,
    )
    host, port = coordinator.start()
    yield f"http://{host}:{port}", recorder
    coordinator.close()


def test_plan_endpoint_is_wire_stamped(api):
    url, _recorder = api
    body = _get(url, wire.PLAN_PATH)
    assert body["wire"] == wire.WIRE_VERSION
    assert body["plan"]["viewers"] == PLAN["viewers"]
    assert body["units"] == ["shard-000", "shard-001"]


def test_status_endpoint_reports_unit_dispositions(api):
    url, _recorder = api
    _post(url, wire.LEASE_PATH, {"worker": "w1"})
    body = _get(url, wire.STATUS_PATH)
    assert body["done"] is False
    assert body["counts"] == {"pending": 1, "leased": 1, "complete": 0}
    assert body["units"][0]["worker"] == "w1"


def test_unknown_endpoint_is_a_404_naming_the_path(api):
    url, _recorder = api
    code, error = _error_of(lambda: _get(url, "/v1/nope"))
    assert code == 404
    assert error["field"] == "path"
    assert wire.LEASE_PATH in error["message"]


def test_wrong_wire_version_is_refused_by_name(api):
    url, _recorder = api
    code, error = _error_of(
        lambda: _post(
            url, wire.LEASE_PATH, raw=json.dumps({"wire": 9, "worker": "w"}).encode()
        )
    )
    assert code == 400
    assert error["field"] == "wire"


def test_lease_without_a_worker_names_the_field(api):
    url, _recorder = api
    code, error = _error_of(lambda: _post(url, wire.LEASE_PATH, {}))
    assert code == 400
    assert error["field"] == "worker"


def test_completing_a_dead_lease_is_410_gone(api):
    url, _recorder = api
    code, error = _error_of(
        lambda: _post(
            url,
            wire.COMPLETE_PATH,
            {"worker": "w", "lease": "lease-999999", "uploads": []},
        )
    )
    assert code == 410
    assert error["field"] == "lease"


def test_upload_shape_errors_name_the_exact_field(api):
    url, _recorder = api
    lease = _post(url, wire.LEASE_PATH, {"worker": "w"})["lease"]
    code, error = _error_of(
        lambda: _post(
            url,
            wire.COMPLETE_PATH,
            {
                "worker": "w",
                "lease": lease["id"],
                "uploads": [
                    {"name": "shard", "kind": "directory", "fingerprint": "x"},
                    {"name": "state", "kind": "file", "fingerprint": "y", "data": "eA=="},
                ],
            },
        )
    )
    assert code == 400
    assert error["field"] == "uploads[0].data"


def test_fingerprint_mismatch_is_409_naming_the_upload(api):
    url, _recorder = api
    lease = _post(url, wire.LEASE_PATH, {"worker": "w"})["lease"]
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w") as archive:
        member = tarfile.TarInfo("./poison.txt")
        member.size = 4
        archive.addfile(member, io.BytesIO(b"oops"))
    uploads = [
        {
            "name": "shard",
            "kind": "directory",
            "fingerprint": "0" * 64,
            "data": base64.b64encode(buffer.getvalue()).decode(),
        },
        {
            "name": "state",
            "kind": "file",
            "fingerprint": "0" * 64,
            "data": base64.b64encode(b"{}").decode(),
        },
    ]
    code, error = _error_of(
        lambda: _post(
            url,
            wire.COMPLETE_PATH,
            {"worker": "w", "lease": lease["id"], "uploads": uploads},
        )
    )
    assert code == 409
    assert error["field"] == "uploads[0].fingerprint"
    assert "0" * 12 in error["message"]


def test_events_feed_is_re_emitted_on_the_coordinator_bus(api):
    url, recorder = api
    line = json.dumps(
        {"event": "note", "schema": EVENT_SCHEMA_VERSION, "text": "hi"}
    )
    body = _post(url, wire.EVENTS_PATH, raw=(line + "\n").encode())
    assert body["accepted"] == 1
    assert ("note", {"text": "hi"}) in recorder.events


def test_events_feed_refuses_other_schema_versions(api):
    url, _recorder = api
    line = json.dumps({"event": "note", "schema": 99, "text": "hi"})
    code, error = _error_of(
        lambda: _post(url, wire.EVENTS_PATH, raw=line.encode())
    )
    assert code == 400
    assert error["field"] == "schema"


def test_events_feed_refuses_non_json_lines(api):
    url, _recorder = api
    code, error = _error_of(
        lambda: _post(url, wire.EVENTS_PATH, raw=b"not json\n")
    )
    assert code == 400
    assert error["field"] == "events"


# -- worker-side guards -----------------------------------------------------


def test_worker_refuses_an_unreachable_coordinator_by_url():
    worker = PullWorker(
        "http://127.0.0.1:1", EventBus(), worker_id="w", poll_interval=0.01
    )
    with pytest.raises(CoordinatorError) as caught:
        worker.run()
    assert caught.value.field == "url"


def test_worker_rejection_rebuilds_the_typed_error(api):
    url, _recorder = api
    worker = PullWorker(url, EventBus(), worker_id="w")
    with pytest.raises(LeaseExpired) as caught:
        worker._post_json(
            wire.COMPLETE_PATH,
            {"worker": "w", "lease": "lease-424242", "uploads": []},
        )
    assert caught.value.status == 410
    assert caught.value.field == "lease"
