"""Tests for the viewer behaviour model."""

from __future__ import annotations

import pytest

from repro.client.viewer import ViewerBehavior, ViewerChoiceModel
from repro.exceptions import ConfigurationError
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.utils.rng import RandomSource


class TestViewerBehavior:
    def test_round_trip_dict(self):
        behavior = ViewerBehavior("<20", "female", "liberal", "stressed")
        assert ViewerBehavior.from_dict(behavior.as_dict()) == behavior

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigurationError):
            ViewerBehavior("baby", "female", "liberal", "stressed")


class TestViewerChoiceModel:
    def test_probability_always_in_valid_range(self):
        graph = build_bandersnatch_script()
        for behavior in (
            ViewerBehavior("<20", "male", "communist", "stressed"),
            ViewerBehavior(">30", "female", "centrist", "happy"),
            ViewerBehavior("20-25", "undisclosed", "undisclosed", "undisclosed"),
        ):
            model = ViewerChoiceModel(behavior)
            for choice_point in graph.iter_choice_points():
                probability = model.default_probability(choice_point.question_id)
                assert 0.05 <= probability <= 0.95

    def test_behaviour_shifts_probabilities(self):
        stressed = ViewerChoiceModel(ViewerBehavior("20-25", "male", "centrist", "stressed"))
        happy = ViewerChoiceModel(ViewerBehavior("20-25", "male", "centrist", "happy"))
        # Q6 probes aggression: stress lowers the default-branch probability.
        assert stressed.default_probability("Q6") < happy.default_probability("Q6")

    def test_unknown_question_uses_base_probability(self):
        model = ViewerChoiceModel(
            ViewerBehavior("20-25", "male", "centrist", "happy"), base_default_probability=0.7
        )
        assert model.default_probability("QX") == pytest.approx(0.7)

    def test_canonicalises_branch_specific_question_ids(self):
        model = ViewerChoiceModel(ViewerBehavior("20-25", "male", "centrist", "stressed"))
        assert model.default_probability("Q6@S5b") == model.default_probability("Q6")

    def test_decide_is_deterministic_given_rng(self):
        graph = build_bandersnatch_script()
        choice_point = graph.choice_point_after("S0")
        model = ViewerChoiceModel(ViewerBehavior("20-25", "male", "centrist", "happy"))
        assert model.decide(choice_point, RandomSource(5)) == model.decide(
            choice_point, RandomSource(5)
        )

    def test_decision_delay_within_timeout(self):
        graph = build_bandersnatch_script()
        choice_point = graph.choice_point_after("S0")
        model = ViewerChoiceModel(ViewerBehavior("20-25", "male", "centrist", "happy"))
        rng = RandomSource(6)
        for _ in range(50):
            delay = model.decision_delay(choice_point, rng)
            assert 0.0 < delay < choice_point.timeout_seconds

    def test_invalid_base_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            ViewerChoiceModel(
                ViewerBehavior("20-25", "male", "centrist", "happy"),
                base_default_probability=1.5,
            )
