"""Tests for behavioural profiling from recovered choices."""

from __future__ import annotations

import pytest

from repro.core.inference import ChoiceEvent, InferredChoices
from repro.core.profiling import (
    BehavioralProfile,
    TraitEstimate,
    profile_agreement,
    profile_from_choices,
    profile_from_path,
)
from repro.exceptions import AttackError
from repro.narrative.bandersnatch import BANDERSNATCH_CHOICE_LABELS, build_bandersnatch_script
from repro.narrative.path import path_from_choices


@pytest.fixture(scope="module")
def full_graph():
    return build_bandersnatch_script()


class TestProfileFromPath:
    def test_profile_covers_every_answered_trait(self, full_graph):
        path = path_from_choices(full_graph, [True] * 10)
        profile = profile_from_path(path)
        expected_traits = {spec[0] for spec in BANDERSNATCH_CHOICE_LABELS.values()}
        assert set(profile.traits) == expected_traits

    def test_selected_labels_propagate(self, full_graph):
        path = path_from_choices(full_graph, [False] + [True] * 9)
        profile = profile_from_path(path)
        food = profile.estimate_for("food_preference")
        assert food.leaning == "non-default-leaning"
        assert food.selected_label == BANDERSNATCH_CHOICE_LABELS["Q1"][2]

    def test_sensitive_estimates_subset(self, full_graph):
        path = path_from_choices(full_graph, [True] * 10)
        profile = profile_from_path(path)
        sensitive = profile.sensitive_estimates()
        assert {e.trait for e in sensitive} <= {"violence", "aggression", "risk_taking"}
        assert len(sensitive) == 3

    def test_unknown_trait_lookup_raises(self, full_graph):
        profile = profile_from_path(path_from_choices(full_graph, [True] * 10))
        with pytest.raises(AttackError):
            profile.estimate_for("shoe_size")


class TestProfileFromInferredChoices:
    def test_matches_ground_truth_profile_when_choices_match(self, full_graph):
        truth_pattern = [True, False, True, True, False, True, True, False, True, True]
        truth_profile = profile_from_path(path_from_choices(full_graph, truth_pattern))
        inferred = InferredChoices(
            events=tuple(
                ChoiceEvent(
                    index=i,
                    question_shown_at=float(i * 60),
                    took_default=value,
                    type2_seen_at=None if value else float(i * 60 + 4),
                )
                for i, value in enumerate(truth_pattern)
            )
        )
        recovered_profile = profile_from_choices(full_graph, inferred)
        assert profile_agreement(recovered_profile, truth_profile) == pytest.approx(1.0)

    def test_partial_agreement(self, full_graph):
        truth_profile = profile_from_path(path_from_choices(full_graph, [True] * 10))
        flipped_profile = profile_from_path(
            path_from_choices(full_graph, [False] + [True] * 9)
        )
        agreement = profile_agreement(flipped_profile, truth_profile)
        assert 0.8 <= agreement < 1.0


class TestValidation:
    def test_trait_estimate_validation(self):
        with pytest.raises(AttackError):
            TraitEstimate(trait="", leaning="default-leaning", evidence_question="Q1", selected_label="x")
        with pytest.raises(AttackError):
            TraitEstimate(trait="t", leaning="sideways", evidence_question="Q1", selected_label="x")

    def test_agreement_requires_ground_truth(self):
        empty = BehavioralProfile(estimates=())
        with pytest.raises(AttackError):
            profile_agreement(empty, empty)
