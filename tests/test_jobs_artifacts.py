"""Workspace / fingerprint edge cases the fleet protocol leans on.

Content fingerprints are the coordinator's only defence against corrupted
uploads, so the corners matter: empty directories, trees re-fingerprinted
after partial writes, and the worker-side refusal to upload artifacts whose
bytes changed after their job finished.
"""

from __future__ import annotations

import io
import tarfile
from pathlib import Path

import pytest

from repro.coordinator.worker import pack_directory, verify_artifacts
from repro.exceptions import CoordinatorError, JobError
from repro.jobs import Workspace, fingerprint_path
from repro.jobs.runner import JobResult


# -- fingerprint_path -------------------------------------------------------


def test_empty_directories_fingerprint_identically(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    assert fingerprint_path(tmp_path / "a") == fingerprint_path(tmp_path / "b")


def test_empty_directory_differs_from_one_with_an_empty_file(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    (tmp_path / "b" / "stub").write_bytes(b"")
    # The tree fold hashes relative paths, so even zero-byte members count.
    assert fingerprint_path(tmp_path / "a") != fingerprint_path(tmp_path / "b")


def test_fingerprint_is_location_independent(tmp_path):
    for root in ("here", "there/nested"):
        directory = tmp_path / root
        directory.mkdir(parents=True)
        (directory / "x.txt").write_text("payload")
        (directory / "sub").mkdir()
        (directory / "sub" / "y.txt").write_text("more")
    assert fingerprint_path(tmp_path / "here") == fingerprint_path(
        tmp_path / "there/nested"
    )


def test_refingerprinting_detects_a_partial_write(tmp_path):
    directory = tmp_path / "dataset"
    directory.mkdir()
    target = directory / "trace.pcap"
    target.write_bytes(b"x" * 1024)
    before = fingerprint_path(directory)
    # Simulate a writer dying mid-rewrite: same file, truncated bytes.
    target.write_bytes(b"x" * 100)
    assert fingerprint_path(directory) != before
    # Restoring the original bytes restores the fingerprint exactly.
    target.write_bytes(b"x" * 1024)
    assert fingerprint_path(directory) == before


def test_missing_path_fails_loudly(tmp_path):
    with pytest.raises(JobError):
        fingerprint_path(tmp_path / "nope")


# -- Workspace --------------------------------------------------------------


def test_workspace_anchors_relative_paths_only(tmp_path):
    workspace = Workspace(tmp_path)
    assert workspace.resolve("out/lib.json") == tmp_path / "out/lib.json"
    absolute = Path("/somewhere/else")
    assert workspace.resolve(absolute) == absolute


def test_workspace_artifact_kinds_follow_the_filesystem(tmp_path):
    workspace = Workspace(tmp_path)
    (tmp_path / "d").mkdir()
    (tmp_path / "d" / "f").write_text("x")
    (tmp_path / "f.json").write_text("{}")
    assert workspace.artifact("d", "d").kind == "directory"
    assert workspace.artifact("f", "f.json").kind == "file"


# -- worker upload guards ---------------------------------------------------


def _result_with(workspace: Workspace, path: str) -> JobResult:
    return JobResult(
        job="generate-dataset",
        artifacts=(workspace.artifact("dataset", path),),
    )


def test_verify_artifacts_accepts_untouched_outputs(tmp_path):
    workspace = Workspace(tmp_path)
    (tmp_path / "dataset").mkdir()
    (tmp_path / "dataset" / "metadata.json").write_text("{}")
    verify_artifacts(workspace, [_result_with(workspace, "dataset")])


def test_verify_artifacts_refuses_bytes_changed_after_the_job(tmp_path):
    workspace = Workspace(tmp_path)
    (tmp_path / "dataset").mkdir()
    target = tmp_path / "dataset" / "metadata.json"
    target.write_text("{}")
    result = _result_with(workspace, "dataset")
    target.write_text('{"tampered": true}')  # partial write / concurrent writer
    with pytest.raises(CoordinatorError) as caught:
        verify_artifacts(workspace, [result])
    assert caught.value.field == "artifact"
    assert "refusing to upload" in str(caught.value)


def test_pack_directory_round_trips_the_fingerprint(tmp_path):
    source = tmp_path / "source"
    source.mkdir()
    (source / "a.txt").write_text("alpha")
    (source / "deep").mkdir()
    (source / "deep" / "b.bin").write_bytes(bytes(range(256)))
    blob = pack_directory(source)

    extracted = tmp_path / "extracted"
    extracted.mkdir()
    with tarfile.open(fileobj=io.BytesIO(blob)) as archive:
        archive.extractall(extracted)
    assert fingerprint_path(extracted) == fingerprint_path(source)
