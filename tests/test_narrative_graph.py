"""Tests for story segments, choice points and the story graph."""

from __future__ import annotations

import pytest

from repro.exceptions import NarrativeError
from repro.narrative.choices import Choice, ChoicePoint, ChoiceRecord
from repro.narrative.graph import StoryGraph, choice_edge_attributes
from repro.narrative.segment import Segment


def _simple_graph() -> StoryGraph:
    graph = StoryGraph(title="test", root_segment_id="A")
    graph.add_segments(
        [
            Segment("A", "root", 120.0),
            Segment("B", "default branch", 60.0, is_ending=True),
            Segment("C", "alternative branch", 60.0, is_ending=True),
        ]
    )
    graph.add_choice_point(
        ChoicePoint(
            question_id="Q1",
            prompt="pick",
            source_segment_id="A",
            options=(
                Choice("stay", "B", is_default=True),
                Choice("leave", "C", is_default=False),
            ),
        )
    )
    return graph


class TestSegment:
    def test_rejects_empty_id(self):
        with pytest.raises(NarrativeError):
            Segment("", "x", 10.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(NarrativeError):
            Segment("S", "x", 0.0)

    def test_chunk_count_rounds_up(self):
        segment = Segment("S", "x", 10.0)
        assert segment.chunk_count(4.0) == 3
        assert segment.chunk_count(5.0) == 2

    def test_chunk_count_rejects_bad_duration(self):
        with pytest.raises(NarrativeError):
            Segment("S", "x", 10.0).chunk_count(0.0)


class TestChoicePoint:
    def test_requires_exactly_one_default(self):
        with pytest.raises(NarrativeError):
            ChoicePoint(
                question_id="Q",
                prompt="p",
                source_segment_id="A",
                options=(
                    Choice("x", "B", is_default=True),
                    Choice("y", "C", is_default=True),
                ),
            )

    def test_requires_distinct_targets(self):
        with pytest.raises(NarrativeError):
            ChoicePoint(
                question_id="Q",
                prompt="p",
                source_segment_id="A",
                options=(
                    Choice("x", "B", is_default=True),
                    Choice("y", "B", is_default=False),
                ),
            )

    def test_default_and_non_default_accessors(self):
        point = ChoicePoint(
            question_id="Q",
            prompt="p",
            source_segment_id="A",
            options=(
                Choice("x", "B", is_default=True),
                Choice("y", "C", is_default=False),
            ),
        )
        assert point.default_choice.label == "x"
        assert point.non_default_choice.label == "y"
        assert point.choice_for(True).target_segment_id == "B"
        assert point.choice_for(False).target_segment_id == "C"
        assert point.choice_by_label("y").target_segment_id == "C"
        with pytest.raises(NarrativeError):
            point.choice_by_label("zzz")

    def test_choice_record_rejects_negative_time(self):
        with pytest.raises(NarrativeError):
            ChoiceRecord("Q1", "x", True, -1.0)


class TestStoryGraph:
    def test_duplicate_segment_rejected(self):
        graph = StoryGraph("t", "A")
        graph.add_segment(Segment("A", "x", 10.0))
        with pytest.raises(NarrativeError):
            graph.add_segment(Segment("A", "x again", 10.0))

    def test_choice_point_unknown_source_rejected(self):
        graph = StoryGraph("t", "A")
        graph.add_segment(Segment("A", "x", 10.0))
        with pytest.raises(NarrativeError):
            graph.add_choice_point(
                ChoicePoint(
                    question_id="Q",
                    prompt="p",
                    source_segment_id="missing",
                    options=(
                        Choice("x", "A", is_default=True),
                        Choice("y", "A", is_default=False),
                    ),
                )
            )

    def test_lookups(self):
        graph = _simple_graph()
        assert graph.root_segment.segment_id == "A"
        assert graph.segment("B").is_ending
        assert graph.choice_point("Q1").prompt == "pick"
        assert graph.choice_point_after("A").question_id == "Q1"
        assert graph.choice_point_after("B") is None
        assert set(graph.successors("A")) == {"B", "C"}
        assert graph.default_successor("A").segment_id == "B"
        assert graph.default_successor("B") is None
        assert "A" in graph and "Z" not in graph

    def test_unknown_segment_lookup_raises(self):
        with pytest.raises(NarrativeError):
            _simple_graph().segment("missing")

    def test_validate_passes_for_well_formed_graph(self):
        _simple_graph().validate()

    def test_validate_catches_dangling_segment(self):
        graph = _simple_graph()
        graph.add_segment(Segment("Z", "unreachable", 10.0, is_ending=True))
        with pytest.raises(NarrativeError, match="unreachable"):
            graph.validate()

    def test_validate_catches_missing_choice_point(self):
        graph = StoryGraph("t", "A")
        graph.add_segments(
            [Segment("A", "root", 10.0), Segment("B", "end", 10.0, is_ending=True)]
        )
        with pytest.raises(NarrativeError, match="no choice point"):
            graph.validate()

    def test_metrics(self):
        graph = _simple_graph()
        assert graph.segment_count == 3
        assert graph.choice_point_count == 1
        assert graph.total_content_seconds() == pytest.approx(240.0)
        assert graph.max_choices_on_any_path() >= 1
        assert len(graph.ending_segments()) == 2

    def test_choice_edge_attributes(self):
        rows = choice_edge_attributes(_simple_graph())
        assert len(rows) == 2
        assert {row["label"] for row in rows} == {"stay", "leave"}

    def test_to_networkx_is_a_copy(self):
        graph = _simple_graph()
        nx_graph = graph.to_networkx()
        nx_graph.remove_node("A")
        assert "A" in graph
