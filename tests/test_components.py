"""The component-spec contract: registry round-trips and loud failures.

The arena's byte-identity promise rests on one property: ``from_spec(
spec(x))`` rebuilds a component whose behaviour is *byte-identical* to
``x``'s — defenses transform the same records to the same bytes,
classifiers fit on the same data predict the same labels.  These tests
pin that property over seeded random parameter draws, plus the loud-
failure half of the contract: malformed specs and unknown names/params/
types must fail naming the offending piece.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.components import COMPONENT_SCHEMA_VERSION, component_instance_name
from repro.core.features import ClientRecord
from repro.defenses import (
    DEFENSE_REGISTRY,
    build_defense,
    defense_from_spec,
    defense_spec,
)
from repro.exceptions import ComponentError
from repro.ml import (
    CLASSIFIER_REGISTRY,
    build_classifier,
    classifier_from_spec,
    classifier_spec,
)

#: Per-registry parameter generators for the seeded round-trip sweeps.
DEFENSE_PARAM_DRAWS = {
    "pad-to-multiple": lambda rng: {"block_bytes": rng.choice([16, 64, 256, 512])},
    "pad-to-constant": lambda rng: {"target_bytes": rng.choice([2048, 4096, 8192])},
    "split-records": lambda rng: {"parts": rng.randint(2, 5)},
    "compress-state-reports": lambda rng: {},
}
CLASSIFIER_PARAM_DRAWS = {
    "interval": lambda rng: {"margin": rng.choice([0.0, 4.0, 8.0, 16.0])},
    "knn": lambda rng: {"k": rng.choice([1, 3, 5, 7])},
    "naive-bayes": lambda rng: {},
    "tree": lambda rng: {"max_depth": rng.randint(2, 8)},
    "logistic": lambda rng: {"iterations": rng.choice([50, 100]), "learning_rate": 0.1},
}


def _random_records(rng: random.Random, count: int = 12) -> list[ClientRecord]:
    return [
        ClientRecord(
            timestamp=round(index * 0.25 + rng.random(), 3),
            wire_length=rng.randint(64, 4096),
            content_type=23,
            label="type1" if rng.random() < 0.5 else "type2",
        )
        for index in range(count)
    ]


def _record_bytes(records: list[ClientRecord]) -> list[tuple]:
    return [
        (record.timestamp, record.wire_length, record.content_type, record.label)
        for record in records
    ]


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name", sorted(DEFENSE_PARAM_DRAWS))
def test_defense_spec_round_trip_transforms_byte_identically(name, seed):
    rng = random.Random(seed)
    params = DEFENSE_PARAM_DRAWS[name](rng)
    original = build_defense(name, params)
    rebuilt = defense_from_spec(defense_spec(original))
    assert defense_spec(rebuilt) == defense_spec(original)
    records = _random_records(random.Random(seed + 100))
    assert _record_bytes(original.transform(records)) == _record_bytes(
        rebuilt.transform(records)
    )


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name", sorted(CLASSIFIER_PARAM_DRAWS))
def test_classifier_spec_round_trip_predicts_identically(name, seed):
    rng = random.Random(seed)
    params = CLASSIFIER_PARAM_DRAWS[name](rng)
    original = build_classifier(name, params)
    rebuilt = classifier_from_spec(classifier_spec(original))
    assert classifier_spec(rebuilt) == classifier_spec(original)
    data_rng = np.random.default_rng(seed)
    features = data_rng.normal(size=(30, 2))
    labels = np.where(features[:, 0] + features[:, 1] > 0, "type1", "type2")
    held_out = data_rng.normal(size=(10, 2))
    if name == "interval":
        # The interval classifier bands a single scalar feature.
        features = features[:, :1]
        held_out = held_out[:, :1]
        labels = np.where(features[:, 0] > 0, "type1", "type2")
    predictions = original.fit(features, labels).predict(held_out)
    repredictions = rebuilt.fit(features, labels).predict(held_out)
    assert list(predictions) == list(repredictions)


def test_specs_are_canonical_sorted_and_schema_stamped():
    spec = defense_spec(build_defense("pad-to-multiple", {"block_bytes": 64}))
    assert list(spec) == sorted(spec)
    assert spec == {
        "component": "defense",
        "name": "pad-to-multiple",
        "params": {"block_bytes": 64},
        "schema": COMPONENT_SCHEMA_VERSION,
    }
    assert component_instance_name(spec) == "pad-to-multiple(block_bytes=64)"
    bare = classifier_spec(build_classifier("naive-bayes", {}))
    assert bare["params"] == {}
    assert component_instance_name(bare) == "naive-bayes"


def test_unknown_component_name_fails_listing_the_registered_names():
    with pytest.raises(ComponentError, match="unknown defense 'bogus'"):
        build_defense("bogus", {})
    with pytest.raises(ComponentError, match="registered classifiers"):
        build_classifier("bogus", {})


def test_unknown_param_fails_naming_it():
    with pytest.raises(
        ComponentError, match=r"unknown param\(s\) \['blocc_bytes'\]"
    ):
        build_defense("pad-to-multiple", {"blocc_bytes": 64})


def test_wrongly_typed_param_fails_naming_param_and_expectation():
    with pytest.raises(
        ComponentError, match="param 'block_bytes' must be int"
    ):
        build_defense("pad-to-multiple", {"block_bytes": "sixty-four"})
    # bool is not an int here, by design: True is never a block size.
    with pytest.raises(ComponentError, match="'block_bytes' must be int"):
        build_defense("pad-to-multiple", {"block_bytes": True})


@pytest.mark.parametrize(
    "mutation, field",
    [
        ({"schema": 99}, "schema"),
        ({"component": "classifier"}, "component"),
        ({"params": "not-a-dict"}, "params"),
    ],
)
def test_malformed_spec_fails_naming_the_offending_field(mutation, field):
    spec = dict(defense_spec(build_defense("split-records", {"parts": 3})))
    spec.update(mutation)
    with pytest.raises(ComponentError, match=field):
        defense_from_spec(spec)


def test_spec_with_unknown_or_missing_fields_fails_by_name():
    spec = dict(defense_spec(build_defense("compress-state-reports", {})))
    spec["extra"] = 1
    with pytest.raises(ComponentError, match="extra"):
        defense_from_spec(spec)
    spec = dict(defense_spec(build_defense("compress-state-reports", {})))
    del spec["name"]
    with pytest.raises(ComponentError, match="name"):
        defense_from_spec(spec)


def test_spec_of_a_directly_constructed_instance_is_refused():
    from repro.defenses import PadToMultiple

    with pytest.raises(ComponentError, match="was not built by the defense"):
        DEFENSE_REGISTRY.spec(PadToMultiple(block_bytes=64))


def test_cross_registry_spec_is_refused():
    spec = classifier_spec(build_classifier("knn", {"k": 3}))
    with pytest.raises(ComponentError, match="'classifier'"):
        defense_from_spec(spec)


def test_registry_names_are_sorted_and_stable():
    assert list(DEFENSE_REGISTRY.names()) == sorted(DEFENSE_REGISTRY.names())
    assert list(CLASSIFIER_REGISTRY.names()) == sorted(
        CLASSIFIER_REGISTRY.names()
    )
    assert CLASSIFIER_REGISTRY.names() == (
        "interval",
        "knn",
        "logistic",
        "naive-bayes",
        "tree",
    )


def test_registry_built_defense_gets_param_bearing_instance_name():
    defense = build_defense("pad-to-constant", {"target_bytes": 4096})
    assert defense.instance_name == "pad-to-constant(target_bytes=4096)"


def test_legacy_name_attribute_still_works_with_a_deprecation_warning():
    defense = build_defense("split-records", {"parts": 3})
    with pytest.deprecated_call():
        legacy = defense.name
    assert legacy == defense.instance_name
