"""Unit tests for the coordinator's plan, ledger, wire and merge layers.

The service-level (HTTP) behaviour and the byte-identity end-to-end run
live in ``tests/test_coordinator_service.py``; everything here drives the
pieces directly — deterministically, with injected clocks.
"""

from __future__ import annotations

import json

import pytest

from repro.coordinator.ledger import (
    COMPLETE,
    LEASED,
    LEDGER_VERSION,
    PENDING,
    LeaseLedger,
)
from repro.coordinator.merge import fold_states_tree
from repro.coordinator.plan import FleetPlan
from repro.coordinator.wire import (
    WIRE_VERSION,
    dump_body,
    error_body,
    parse_body,
    require_field,
)
from repro.core.fingerprint import FingerprintAccumulator, FingerprintLibrary
from repro.exceptions import CoordinatorError, LeaseExpired, ReproError
from repro.jobs.specs import GenerateJob, TrainJob, job_from_dict


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- exceptions -------------------------------------------------------------


def test_coordinator_error_is_a_repro_error_with_field_and_status():
    error = CoordinatorError("nope", field="shards")
    assert isinstance(error, ReproError)
    assert error.field == "shards"
    assert error.status == 400


def test_lease_expired_is_a_coordinator_error_with_gone_status():
    error = LeaseExpired("gone", field="lease")
    assert isinstance(error, CoordinatorError)
    assert error.status == 410


# -- wire -------------------------------------------------------------------


def test_wire_bodies_round_trip_with_version_stamp():
    body = parse_body(dump_body({"worker": "w1"}))
    assert body == {"wire": WIRE_VERSION, "worker": "w1"}


def test_wire_rejects_non_json_naming_the_body():
    with pytest.raises(CoordinatorError) as caught:
        parse_body(b"not json")
    assert caught.value.field == "body"


def test_wire_rejects_non_object_naming_the_body():
    with pytest.raises(CoordinatorError) as caught:
        parse_body(b"[1, 2]")
    assert caught.value.field == "body"


def test_wire_rejects_other_versions_by_name():
    with pytest.raises(CoordinatorError) as caught:
        parse_body(json.dumps({"wire": 99}).encode())
    assert caught.value.field == "wire"
    assert "99" in str(caught.value)
    assert str(WIRE_VERSION) in str(caught.value)


def test_require_field_names_the_missing_field():
    with pytest.raises(CoordinatorError) as caught:
        require_field({"wire": 1}, "worker", str)
    assert caught.value.field == "worker"


def test_require_field_rejects_empty_strings():
    with pytest.raises(CoordinatorError) as caught:
        require_field({"worker": ""}, "worker", str)
    assert caught.value.field == "worker"


def test_error_body_always_names_a_field():
    payload = json.loads(error_body(CoordinatorError("boom")))
    assert payload["error"] == {"message": "boom", "field": "request"}
    payload = json.loads(error_body(CoordinatorError("boom", field="lease")))
    assert payload["error"]["field"] == "lease"


# -- plan -------------------------------------------------------------------


def test_plan_round_trips_through_its_dict_form():
    plan = FleetPlan(viewers=6, shards=3, seed=7, margin=4)
    assert FleetPlan.from_dict(plan.to_dict()) == plan


def test_plan_rejects_unknown_fields_by_name():
    data = FleetPlan().to_dict()
    data["viewer_count"] = 5
    with pytest.raises(CoordinatorError) as caught:
        FleetPlan.from_dict(data)
    assert caught.value.field == "viewer_count"


def test_plan_rejects_missing_fields_by_name():
    data = FleetPlan().to_dict()
    del data["seed"]
    with pytest.raises(CoordinatorError) as caught:
        FleetPlan.from_dict(data)
    assert caught.value.field == "seed"


def test_plan_validation_names_the_bad_field():
    with pytest.raises(CoordinatorError) as caught:
        FleetPlan(shards=0).validate()
    assert caught.value.field == "shards"
    with pytest.raises(CoordinatorError) as caught:
        FleetPlan(viewers=0).validate()
    assert caught.value.field == "viewers"


def test_plan_unit_ids_follow_shard_directory_names():
    assert FleetPlan(shards=3).unit_ids() == ("shard-000", "shard-001", "shard-002")


def test_unit_jobs_are_wire_safe_specs_with_workspace_relative_paths():
    plan = FleetPlan(viewers=10, shards=4, seed=5, margin=6, write_pcaps=True)
    generate, train = plan.unit_jobs(2)
    assert isinstance(generate, GenerateJob)
    assert isinstance(train, TrainJob)
    # The exact flags a human would pass for the manual distributed flow.
    assert generate.only_shards == "2"
    assert generate.shards == 4
    assert generate.seed == 5
    assert train.sharded and train.save_state == "state.json"
    for spec in (generate, train):
        rebuilt = job_from_dict(spec.to_dict())
        assert rebuilt == spec


def test_unit_uploads_declare_the_shard_tree_and_the_state_blob():
    uploads = FleetPlan(shards=2).unit_uploads(1)
    assert [upload["name"] for upload in uploads] == ["shard", "state"]
    assert uploads[0] == {
        "name": "shard",
        "path": "dataset/shard-001",
        "kind": "directory",
    }
    assert uploads[1]["kind"] == "file"


def test_out_of_range_shard_is_refused():
    with pytest.raises(CoordinatorError) as caught:
        FleetPlan(shards=2).unit_jobs(2)
    assert caught.value.field == "shard"


# -- ledger -----------------------------------------------------------------


@pytest.fixture()
def plan() -> FleetPlan:
    return FleetPlan(viewers=4, shards=2, seed=1)


def test_ledger_leases_units_in_shard_order(tmp_path, plan):
    ledger = LeaseLedger(tmp_path / "ledger.json", plan, clock=FakeClock())
    first = ledger.lease("w1", ttl=60)
    second = ledger.lease("w2", ttl=60)
    assert (first.unit, second.unit) == ("shard-000", "shard-001")
    assert first.lease == "lease-000001"
    assert second.lease == "lease-000002"
    assert ledger.lease("w3", ttl=60) is None
    assert ledger.counts() == {PENDING: 0, LEASED: 2, COMPLETE: 0}


def test_expired_leases_return_to_the_pool_and_die(tmp_path, plan):
    clock = FakeClock()
    ledger = LeaseLedger(tmp_path / "ledger.json", plan, clock=clock)
    unit = ledger.lease("w1", ttl=30)
    assert ledger.reclaim_expired() == ()  # still live
    clock.advance(31)
    reclaimed = ledger.reclaim_expired()
    assert [entry.unit for entry in reclaimed] == [unit.unit]
    assert reclaimed[0].worker == "w1"
    # The dead lease can no longer complete anything.
    with pytest.raises(LeaseExpired) as caught:
        ledger.unit_for_lease(unit.lease)
    assert caught.value.field == "lease"
    # The unit leases again, to a fresh lease id, counting the attempt.
    again = ledger.lease("w2", ttl=30)
    assert again.unit == unit.unit
    assert again.lease != unit.lease
    assert again.attempts == 2


def test_completion_records_fingerprints(tmp_path, plan):
    ledger = LeaseLedger(tmp_path / "ledger.json", plan, clock=FakeClock())
    first = ledger.lease("w1", ttl=60)
    second = ledger.lease("w1", ttl=60)
    ledger.complete(first.lease, {"shard": "a" * 64})
    assert not ledger.all_complete()
    ledger.complete(second.lease, {"shard": "b" * 64})
    assert ledger.all_complete()
    assert ledger.units()[0].fingerprints == {"shard": "a" * 64}


def test_ledger_survives_a_coordinator_restart(tmp_path, plan):
    path = tmp_path / "ledger.json"
    clock = FakeClock()
    ledger = LeaseLedger(path, plan, clock=clock)
    leased = ledger.lease("w1", ttl=60)
    ledger.complete(leased.lease, {"shard": "a" * 64})
    ledger.lease("w2", ttl=60)

    reloaded = LeaseLedger(path, plan, clock=clock)
    statuses = {unit.unit: unit.status for unit in reloaded.units()}
    assert statuses == {"shard-000": COMPLETE, "shard-001": LEASED}
    # The lease counter also survives: no id is ever reused.
    clock.advance(61)
    reloaded.reclaim_expired()
    fresh = reloaded.lease("w3", ttl=60)
    assert fresh.lease == "lease-000003"


def test_ledger_refuses_a_different_plan_naming_the_field(tmp_path, plan):
    path = tmp_path / "ledger.json"
    LeaseLedger(path, plan, clock=FakeClock())
    other = FleetPlan(viewers=4, shards=2, seed=99)
    with pytest.raises(CoordinatorError) as caught:
        LeaseLedger(path, other, clock=FakeClock())
    assert caught.value.field == "seed"
    assert "99" in str(caught.value)


def test_ledger_refuses_other_ledger_versions(tmp_path, plan):
    path = tmp_path / "ledger.json"
    LeaseLedger(path, plan, clock=FakeClock())
    data = json.loads(path.read_text())
    data["ledger"] = LEDGER_VERSION + 1
    path.write_text(json.dumps(data))
    with pytest.raises(CoordinatorError) as caught:
        LeaseLedger(path, plan, clock=FakeClock())
    assert caught.value.field == "ledger"


def test_ledger_writes_are_atomic(tmp_path, plan):
    path = tmp_path / "ledger.json"
    ledger = LeaseLedger(path, plan, clock=FakeClock())
    ledger.lease("w1", ttl=60)
    # The write-temp-then-rename idiom never leaves its scratch file.
    assert not path.with_name(path.name + ".tmp").exists()
    assert json.loads(path.read_text())["lease_counter"] == 1


# -- merge tree -------------------------------------------------------------


def _state(seed: int) -> FingerprintAccumulator:
    # Type-1 clusters near 2000, type-2 near 3000: the bands stay separable
    # under any merge order, while each state still moves the extremes.
    accumulator = FingerprintAccumulator()
    jitter = seed * 7
    accumulator.observe_lengths(
        "linux/firefox",
        [2000 + jitter, 3000 + jitter, 2011 + jitter],
        [1, 2, 1],
    )
    accumulator.observe_lengths(
        "windows/chrome",
        [3100 + jitter, 2100 + jitter],
        [2, 1],
    )
    return accumulator


@pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
def test_tree_fold_matches_the_sequential_fold_byte_for_byte(tmp_path, count):
    sequential = FingerprintAccumulator()
    for index in range(count):
        sequential.merge(_state(index))
    tree = fold_states_tree([_state(index) for index in range(count)])

    for name, merged in (("sequential", sequential), ("tree", tree)):
        library = FingerprintLibrary()
        merged.finalize_into(library, margin=8)
        library.save(tmp_path / f"{name}.json")
    assert (tmp_path / "tree.json").read_bytes() == (
        tmp_path / "sequential.json"
    ).read_bytes()


def test_tree_fold_refuses_zero_states():
    with pytest.raises(CoordinatorError) as caught:
        fold_states_tree([])
    assert caught.value.field == "states"
