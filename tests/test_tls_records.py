"""Tests for TLS record framing."""

from __future__ import annotations

import pytest

from repro.exceptions import TLSError
from repro.tls.records import (
    MAX_CIPHERTEXT_LENGTH,
    RECORD_HEADER_LENGTH,
    ContentType,
    TLSRecord,
    iter_record_lengths,
    parse_records,
)


def _record(size: int, content: ContentType = ContentType.APPLICATION_DATA) -> TLSRecord:
    return TLSRecord(content_type=content, version=0x0303, ciphertext=b"\xaa" * size)


class TestTLSRecord:
    def test_lengths(self):
        record = _record(100)
        assert record.length == 100
        assert record.wire_length == 105

    def test_serialize_parse_roundtrip(self):
        record = _record(64, ContentType.HANDSHAKE)
        parsed, consumed = TLSRecord.parse_one(record.serialize())
        assert consumed == record.wire_length
        assert parsed == record

    def test_rejects_empty_ciphertext(self):
        with pytest.raises(TLSError):
            TLSRecord(ContentType.APPLICATION_DATA, 0x0303, b"")

    def test_rejects_oversized_ciphertext(self):
        with pytest.raises(TLSError):
            TLSRecord(ContentType.APPLICATION_DATA, 0x0303, b"x" * (MAX_CIPHERTEXT_LENGTH + 1))

    def test_rejects_bad_version(self):
        with pytest.raises(TLSError):
            TLSRecord(ContentType.APPLICATION_DATA, -1, b"x")

    def test_parse_truncated_header(self):
        with pytest.raises(TLSError):
            TLSRecord.parse_one(b"\x17\x03")

    def test_parse_truncated_body(self):
        data = _record(50).serialize()[:-10]
        with pytest.raises(TLSError):
            TLSRecord.parse_one(data)

    def test_parse_unknown_content_type(self):
        data = bytearray(_record(10).serialize())
        data[0] = 99
        with pytest.raises(TLSError):
            TLSRecord.parse_one(bytes(data))


class TestStreamParsing:
    def test_parse_records_consumes_whole_stream(self):
        records = [_record(10), _record(200, ContentType.HANDSHAKE), _record(3000)]
        stream = b"".join(record.serialize() for record in records)
        parsed = parse_records(stream)
        assert parsed == records

    def test_parse_records_rejects_trailing_garbage(self):
        stream = _record(10).serialize() + b"\x17\x03"
        with pytest.raises(TLSError):
            parse_records(stream)

    def test_iter_record_lengths_matches_wire_lengths(self):
        records = [_record(10), _record(555), _record(2184)]
        stream = b"".join(record.serialize() for record in records)
        assert list(iter_record_lengths(stream)) == [
            record.wire_length for record in records
        ]

    def test_iter_record_lengths_never_reads_payload(self):
        # Corrupting ciphertext bytes must not affect the observed lengths.
        record = _record(100)
        stream = bytearray(record.serialize())
        stream[RECORD_HEADER_LENGTH:] = b"\x00" * 100
        assert list(iter_record_lengths(bytes(stream))) == [record.wire_length]
