"""The public import contract: ``__all__`` audits and top-level re-exports.

``repro``'s package docstring promises two public layers — the domain
attack API and the jobs layer the CLI and fleet coordinator drive.  These
tests pin that promise: everything in an ``__all__`` actually exists,
everything public-looking is listed, and the names the docstring calls out
import from the top-level package directly.
"""

from __future__ import annotations

import pytest

import repro
import repro.arena
import repro.coordinator
import repro.defenses
import repro.ingest
import repro.jobs
import repro.ml


AUDITED_PACKAGES = [
    repro,
    repro.arena,
    repro.coordinator,
    repro.defenses,
    repro.ingest,
    repro.jobs,
    repro.ml,
]


@pytest.mark.parametrize(
    "package", AUDITED_PACKAGES, ids=lambda module: module.__name__
)
def test_all_names_resolve_and_stay_sorted(package):
    for name in package.__all__:
        assert hasattr(package, name), f"{package.__name__}.__all__ lists {name}"
    assert list(package.__all__) == sorted(package.__all__)
    assert len(set(package.__all__)) == len(package.__all__)


@pytest.mark.parametrize(
    "package", AUDITED_PACKAGES, ids=lambda module: module.__name__
)
def test_no_public_binding_is_missing_from_all(package):
    # Anything bound at package level without a leading underscore is either
    # exported or a submodule; a "public" helper that is neither is an
    # accidental API we would have to support forever.
    import types

    for name, value in vars(package).items():
        if name.startswith("_") or isinstance(value, types.ModuleType):
            continue
        if name == "annotations":
            continue
        assert name in package.__all__, (
            f"{package.__name__}.{name} looks public but is not in __all__"
        )


def test_jobs_layer_is_importable_from_the_top_level_package():
    # The exact surface the package docstring's "Import contract" promises.
    from repro import JobResult, JobRunner, Workspace, job_from_dict

    assert JobRunner is repro.jobs.JobRunner
    assert Workspace is repro.jobs.Workspace
    assert job_from_dict is repro.jobs.job_from_dict
    assert JobResult is repro.jobs.JobResult
    for name in ("JobResult", "JobRunner", "Workspace", "job_from_dict"):
        assert name in repro.__all__


def test_component_registries_are_importable_from_their_packages():
    # The component-spec layer the docstring's "Import contract" promises.
    from repro.defenses import DEFENSE_REGISTRY, build_defense, defense_spec
    from repro.ml import CLASSIFIER_REGISTRY, build_classifier, classifier_spec

    defense = build_defense("pad-to-multiple", {"block_bytes": 64})
    spec = defense_spec(defense)
    assert spec["component"] == "defense"
    assert DEFENSE_REGISTRY.names() == (
        "compress-state-reports",
        "pad-to-constant",
        "pad-to-multiple",
        "split-records",
    )
    classifier = build_classifier("knn", {"k": 7})
    assert classifier_spec(classifier)["component"] == "classifier"
    assert "knn" in CLASSIFIER_REGISTRY.names()
    assert "DEFENSE_REGISTRY" in repro.defenses.__all__
    assert "CLASSIFIER_REGISTRY" in repro.ml.__all__


def test_version_stamps_are_integers_and_documented():
    # The three version handshakes the import contract names.
    assert isinstance(repro.jobs.SCHEMA_VERSION, int)
    assert isinstance(repro.jobs.EVENT_SCHEMA_VERSION, int)
    assert isinstance(repro.coordinator.WIRE_VERSION, int)
    docstring = repro.__doc__
    assert "Import contract" in docstring
    assert "job_from_dict" in docstring
    assert "EVENT_SCHEMA_VERSION" in docstring
    assert "WIRE_VERSION" in docstring
