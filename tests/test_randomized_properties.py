"""Seeded-random property tests for the distributed-core primitives.

PRs 2–4 built a surface of parsing and merging logic that was only
example-tested; these tests sweep it with deterministic fuzz (plain
``random.Random`` with fixed seeds — reproducible, no extra dependencies):

* ``parse_shard_selection``: every valid selection string canonicalises to
  the same sorted, deduplicated index tuple however it is spelled, and every
  invalid one fails loudly naming the offence;
* ``FingerprintAccumulator.merge``: any permutation and any tree shape of
  per-shard state merges finalises into a library byte-identical to batch
  training over the concatenated records — the property that makes
  distributed calibration trustworthy.
"""

from __future__ import annotations

import random

import pytest

from repro.core.features import ClientRecord, LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2
from repro.core.fingerprint import FingerprintAccumulator, FingerprintLibrary
from repro.dataset.shards import parse_shard_selection
from repro.exceptions import DatasetError

# -- parse_shard_selection ----------------------------------------------------


def _spell_selection(rng: random.Random, indices: set[int]) -> tuple[str, int]:
    """A random spelling of ``indices`` plus a shard count that admits it.

    Covers single indices, inclusive ranges, overlaps, duplicates and
    whitespace — everything the grammar allows.
    """
    shard_count = max(indices) + 1 + rng.randrange(3)
    items: list[str] = []
    remaining = sorted(indices)
    while remaining:
        if len(remaining) >= 2 and rng.random() < 0.5:
            # Spell a contiguous prefix as a range (possibly of length 1).
            start = remaining[0]
            stop = start
            while remaining and remaining[0] == stop:
                remaining.pop(0)
                stop += 1
            items.append(f"{start}-{stop - 1}")
        else:
            items.append(str(remaining.pop(0)))
    # Overlapping and duplicate items must collapse.
    for _ in range(rng.randrange(3)):
        extra = rng.choice(sorted(indices))
        items.append(
            f"{extra}-{extra}" if rng.random() < 0.5 else str(extra)
        )
    rng.shuffle(items)
    spaced = [
        f"{' ' * rng.randrange(2)}{item}{' ' * rng.randrange(2)}" for item in items
    ]
    return ",".join(spaced), shard_count


def test_random_valid_selections_canonicalise(seed: int = 20260727):
    rng = random.Random(seed)
    for _ in range(300):
        indices = set(
            rng.sample(range(40), rng.randrange(1, 10))
        )
        selection, shard_count = _spell_selection(rng, indices)
        parsed = parse_shard_selection(selection, shard_count)
        assert parsed == tuple(sorted(indices)), selection
        # Canonical: re-spelling the parsed result parses identically.
        respelled = ",".join(str(index) for index in parsed)
        assert parse_shard_selection(respelled, shard_count) == parsed


def test_random_overlapping_spellings_collapse_to_one_canonical_set(
    seed: int = 97,
):
    rng = random.Random(seed)
    for _ in range(200):
        indices = set(rng.sample(range(25), rng.randrange(1, 8)))
        first, shard_count_a = _spell_selection(rng, indices)
        second, shard_count_b = _spell_selection(rng, indices)
        shard_count = max(shard_count_a, shard_count_b)
        assert parse_shard_selection(first, shard_count) == parse_shard_selection(
            second, shard_count
        )


def test_random_invalid_selections_fail_loudly(seed: int = 4242):
    rng = random.Random(seed)
    malformed = ["x", "1.5", "-3", "3-", "1--2", "2-3-4", "one", "0x1", "+1"]
    for _ in range(200):
        shard_count = rng.randrange(1, 20)
        kind = rng.choice(("malformed", "reversed", "out-of-range", "empty"))
        if kind == "malformed":
            item = rng.choice(malformed)
            expectation = "malformed shard selection item"
        elif kind == "reversed":
            high = rng.randrange(1, shard_count + 5)
            low = high + 1 + rng.randrange(5)
            item = f"{low}-{high}"
            # A reversed range may also be out of range; reversal is
            # detected first so the message names the real offence.
            expectation = "is reversed"
        elif kind == "out-of-range":
            index = shard_count + rng.randrange(10)
            item = str(index)
            expectation = "out of range"
        else:
            item = " "
            expectation = "selects no shards"
        # Embed the offending item among valid ones (except the empty case,
        # which must stay empty to trigger).
        if kind == "empty":
            selection = rng.choice(["", " ", ",", " , "])
        else:
            valid = [str(index) for index in range(min(2, shard_count))]
            parts = valid + [item]
            rng.shuffle(parts)
            selection = ",".join(parts)
        with pytest.raises(DatasetError, match=expectation):
            parse_shard_selection(selection, shard_count)


# -- FingerprintAccumulator.merge ---------------------------------------------


def _random_records(
    rng: random.Random, environments: list[str]
) -> dict[str, list[ClientRecord]]:
    """Labelled records per environment, with both types guaranteed present.

    Band positions are drawn per environment so type-1 and type-2 cannot
    overlap (finalisation would refuse) however the extremes fall.
    """
    records: dict[str, list[ClientRecord]] = {}
    for environment in environments:
        base1 = rng.randrange(100, 300)
        base2 = rng.randrange(600, 900)
        batch: list[ClientRecord] = [
            ClientRecord(timestamp=0.0, wire_length=base1, content_type=23, label=LABEL_TYPE1),
            ClientRecord(timestamp=0.0, wire_length=base2, content_type=23, label=LABEL_TYPE2),
        ]
        for index in range(rng.randrange(0, 30)):
            label = rng.choice((LABEL_TYPE1, LABEL_TYPE2, LABEL_OTHER, None))
            if label == LABEL_TYPE1:
                length = base1 + rng.randrange(0, 40)
            elif label == LABEL_TYPE2:
                length = base2 + rng.randrange(0, 40)
            else:
                length = rng.randrange(1200, 1500)
            batch.append(
                ClientRecord(
                    timestamp=float(index),
                    wire_length=length,
                    content_type=23,
                    label=label,
                )
            )
        records[environment] = batch
    return records


def _shard_states(
    rng: random.Random, records: dict[str, list[ClientRecord]], shard_count: int
) -> list[FingerprintAccumulator]:
    """Scatter the records over ``shard_count`` per-shard accumulators."""
    shards = [FingerprintAccumulator() for _ in range(shard_count)]
    for environment, batch in records.items():
        for record in batch:
            rng.choice(shards).observe(environment, [record])
    return shards


def _merge_random_tree(
    rng: random.Random, states: list[FingerprintAccumulator]
) -> FingerprintAccumulator:
    """Fold states pairwise in a random order and tree shape."""
    pool = list(states)
    rng.shuffle(pool)
    while len(pool) > 1:
        left = pool.pop(rng.randrange(len(pool)))
        right = pool.pop(rng.randrange(len(pool)))
        pool.append(left.merge(right))
    return pool[0]


def _library_bytes(accumulator: FingerprintAccumulator, path, margin: int) -> bytes:
    library = FingerprintLibrary()
    accumulator.finalize_into(library, margin=margin)
    library.save(path)
    return path.read_bytes()


def test_merge_is_associative_and_commutative_up_to_bytes(
    tmp_path, seed: int = 1337
):
    rng = random.Random(seed)
    for round_index in range(25):
        environments = [
            f"os{index}/browser{index}" for index in range(rng.randrange(1, 4))
        ]
        records = _random_records(rng, environments)
        margin = rng.randrange(0, 9)
        # Batch reference: one accumulator sees everything in order.
        batch = FingerprintAccumulator()
        for environment, environment_records in records.items():
            batch.observe(environment, environment_records)
        reference = _library_bytes(batch, tmp_path / "reference.json", margin)
        # Any scatter into shards, merged in any permutation and tree
        # shape, finalises byte-identically.
        for attempt in range(3):
            shard_count = rng.randrange(2, 7)
            # Fresh states each attempt: merge mutates its receiver.
            states = _shard_states(
                random.Random(seed * 1_000_003 + round_index * 101 + attempt),
                records,
                shard_count,
            )
            merged = _merge_random_tree(rng, states)
            assert (
                _library_bytes(merged, tmp_path / "merged.json", margin)
                == reference
            )


def test_merge_accumulates_counts_and_saves_deterministically(
    tmp_path, seed: int = 777
):
    rng = random.Random(seed)
    records = _random_records(rng, ["linux/firefox", "windows/chrome"])
    total = sum(len(batch) for batch in records.values())
    states = _shard_states(rng, records, 4)
    assert sum(state.record_count for state in states) == total
    merged = _merge_random_tree(rng, states)
    assert merged.record_count == total
    # Serialised state is key-sorted, so the merge order cannot leak into
    # the bytes either.
    merged.save(tmp_path / "a.json")
    remerged = _merge_random_tree(
        rng, _shard_states(random.Random(1), records, 3)
    )
    remerged.save(tmp_path / "b.json")
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()
