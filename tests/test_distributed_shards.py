"""Parallel & distributed shard generation, stitching and fingerprint merge.

The contract under test is the roadmap's distribution story: whole shards fan
out over a process pool with byte-identical output, machines generate
disjoint shard subsets of one plan, the rsync'd-together shards stitch into a
manifest byte-identical to a single-machine run, and per-machine fingerprint
accumulator states merge into exactly the library one machine would train.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.core.features import ClientRecord, LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2
from repro.core.fingerprint import (
    FingerprintAccumulator,
    FingerprintLibrary,
)
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.format import snapshot_dataset_files
from repro.dataset.shards import (
    SHARD_VERIFIED,
    ShardedDataset,
    discover_shard_directories,
    generate_shard_subset,
    generate_sharded_dataset,
    load_consistent_shard_metadata,
    parse_shard_selection,
    plan_shards,
    stitch_sharded_dataset,
)
from repro.exceptions import DatasetError, FingerprintError
from repro.streaming.session import SessionConfig

SEED = 29
VIEWERS = 4
SHARDS = 2
CONFIG = SessionConfig(cross_traffic_enabled=False)


def _generate_full(directory: Path, **kwargs) -> ShardedDataset:
    return generate_sharded_dataset(
        directory,
        viewer_count=VIEWERS,
        shard_count=SHARDS,
        seed=SEED,
        config=CONFIG,
        **kwargs,
    )


def _generate_subset(directory: Path, only_shards, **kwargs):
    return generate_shard_subset(
        directory,
        viewer_count=VIEWERS,
        shard_count=SHARDS,
        only_shards=only_shards,
        seed=SEED,
        config=CONFIG,
        **kwargs,
    )


_dataset_files = snapshot_dataset_files


@pytest.fixture(scope="module")
def reference(tmp_path_factory) -> ShardedDataset:
    """One uninterrupted single-machine run: the byte-level reference."""
    return _generate_full(tmp_path_factory.mktemp("reference") / "dataset")


@pytest.fixture(scope="module")
def split_roots(tmp_path_factory) -> tuple[Path, Path]:
    """Two 'machines' each generating a disjoint subset of the same plan."""
    machine_a = tmp_path_factory.mktemp("machine-a") / "root"
    machine_b = tmp_path_factory.mktemp("machine-b") / "root"
    _generate_subset(machine_a, only_shards=[0])
    _generate_subset(machine_b, only_shards=[1])
    return machine_a, machine_b


@pytest.fixture()
def stitched_root(tmp_path, split_roots) -> Path:
    """The rsync'd-together union of both machines' output (pre-stitch)."""
    machine_a, machine_b = split_roots
    root = tmp_path / "stitched"
    root.mkdir()
    for machine in (machine_a, machine_b):
        for shard in machine.glob("shard-*"):
            shutil.copytree(shard, root / shard.name)
    return root


class TestParseShardSelection:
    def test_single_indices_and_ranges(self):
        assert parse_shard_selection("0", 4) == (0,)
        assert parse_shard_selection("0,3-5", 8) == (0, 3, 4, 5)
        assert parse_shard_selection("2-2", 4) == (2,)

    def test_whitespace_and_duplicates_collapse(self):
        assert parse_shard_selection(" 1 , 3-4 ,1", 6) == (1, 3, 4)

    def test_overlapping_ranges_collapse(self):
        assert parse_shard_selection("1-3,2-4", 6) == (1, 2, 3, 4)

    def test_empty_selection_rejected(self):
        with pytest.raises(DatasetError, match="selects no shards"):
            parse_shard_selection("", 4)
        with pytest.raises(DatasetError, match="selects no shards"):
            parse_shard_selection(" , ", 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(DatasetError, match="out of range"):
            parse_shard_selection("4", 4)
        with pytest.raises(DatasetError, match="out of range"):
            parse_shard_selection("2-9", 4)

    def test_malformed_items_rejected(self):
        for bad in ("x", "1-", "-2", "1--3", "1:3"):
            with pytest.raises(DatasetError, match="malformed|out of range"):
                parse_shard_selection(bad, 4)

    def test_reversed_range_rejected(self):
        with pytest.raises(DatasetError, match="reversed"):
            parse_shard_selection("5-3", 8)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(DatasetError, match="positive"):
            parse_shard_selection("0", 0)


class TestShardParallelGeneration:
    def test_shard_workers_output_byte_identical_to_serial(
        self, tmp_path, reference
    ):
        parallel = _generate_full(tmp_path / "parallel", shard_workers=2)
        assert parallel.summary() == reference.summary()
        assert _dataset_files(tmp_path / "parallel") == _dataset_files(
            reference.directory
        )

    def test_shard_workers_resume_skips_complete_shards(self, tmp_path, reference):
        copy = tmp_path / "dataset"
        shutil.copytree(reference.directory, copy)
        (copy / "shard-001" / "metadata.json").unlink()
        events: list[tuple[str, str]] = []
        resumed = _generate_full(
            copy,
            shard_workers=2,
            resume=True,
            status=lambda s, state: events.append((s.dirname, state)),
        )
        assert ("shard-000", "skipped") in events
        assert ("shard-001", "generated") in events
        assert resumed.summary() == reference.summary()
        assert _dataset_files(copy) == _dataset_files(reference.directory)

    def test_progress_reaches_the_population_total(self, tmp_path):
        seen: list[tuple[int, int]] = []
        _generate_full(
            tmp_path / "dataset",
            shard_workers=2,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (VIEWERS, VIEWERS)


class TestShardSubsetGeneration:
    def test_only_selected_shard_dirs_and_no_manifest(self, split_roots):
        machine_a, machine_b = split_roots
        assert (machine_a / "shard-000").is_dir()
        assert not (machine_a / "shard-001").exists()
        assert not (machine_a / "shards.json").exists()
        assert (machine_b / "shard-001").is_dir()
        assert not (machine_b / "shard-000").exists()

    def test_subset_shards_byte_identical_to_full_run(self, split_roots, reference):
        machine_a, machine_b = split_roots
        for machine, shard in ((machine_a, "shard-000"), (machine_b, "shard-001")):
            assert _dataset_files(machine / shard) == _dataset_files(
                reference.directory / shard
            )

    def test_empty_selection_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="no shards selected"):
            _generate_subset(tmp_path / "dataset", only_shards=[])

    def test_out_of_range_selection_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="out of range"):
            _generate_subset(tmp_path / "dataset", only_shards=[0, SHARDS])

    def test_overlapping_selection_generates_once(self, tmp_path):
        summaries = _generate_subset(
            tmp_path / "dataset", only_shards=[0, 0, 0]
        )
        assert [summary.index for summary in summaries] == [0]

    def test_subset_removes_a_stale_manifest(self, tmp_path, reference):
        copy = tmp_path / "dataset"
        shutil.copytree(reference.directory, copy)
        assert (copy / "shards.json").exists()
        _generate_subset(copy, only_shards=[0])
        assert not (copy / "shards.json").exists()
        # The unselected shard was left untouched.
        assert _dataset_files(copy / "shard-001") == _dataset_files(
            reference.directory / "shard-001"
        )


class TestStitch:
    def test_stitch_publishes_a_manifest_identical_to_single_machine(
        self, stitched_root, reference
    ):
        events: list[tuple[str, str]] = []
        dataset = stitch_sharded_dataset(
            stitched_root,
            status=lambda s, state: events.append((s.dirname, state)),
        )
        assert [state for _name, state in events] == [SHARD_VERIFIED] * SHARDS
        assert (stitched_root / "shards.json").read_bytes() == (
            reference.directory / "shards.json"
        ).read_bytes()
        assert _dataset_files(stitched_root) == _dataset_files(reference.directory)
        assert dataset.summary() == reference.summary()

    def test_stitched_root_loads_and_trains(self, stitched_root, reference):
        stitch_sharded_dataset(stitched_root)
        loaded = ShardedDataset.load(stitched_root)
        assert loaded.viewer_count == VIEWERS
        incremental = WhiteMirrorAttack()
        incremental.train_incremental(loaded.iter_shard_training_sessions())
        batch = WhiteMirrorAttack()
        batch.train(
            [
                session
                for shard in ShardedDataset.load(
                    reference.directory
                ).iter_shard_training_sessions()
                for session in shard
            ]
        )
        assert incremental.library.as_dict() == batch.library.as_dict()

    def test_missing_shard_index_is_named(self, stitched_root):
        shutil.rmtree(stitched_root / "shard-000")
        with pytest.raises(DatasetError, match=r"\[0\] are missing"):
            stitch_sharded_dataset(stitched_root)

    def test_missing_trailing_shard_is_detected(self, stitched_root):
        # The plan totals are recorded in every shard's metadata, so a root
        # that lost its *last* shards (machine B's rsync never happened)
        # cannot masquerade as a smaller but complete dataset.
        shutil.rmtree(stitched_root / f"shard-{SHARDS - 1:03d}")
        with pytest.raises(DatasetError, match="are missing"):
            stitch_sharded_dataset(stitched_root)

    def test_duplicated_shard_under_a_new_name_is_rejected(self, stitched_root):
        # A mis-rsynced copy of shard-000 parked as shard-002 must fail both
        # stitching and subset training (it would fold viewers in twice).
        shutil.copytree(
            stitched_root / "shard-000", stitched_root / f"shard-{SHARDS:03d}"
        )
        with pytest.raises(DatasetError, match="records shard plan index"):
            stitch_sharded_dataset(stitched_root)
        with pytest.raises(DatasetError, match="records shard plan index"):
            load_consistent_shard_metadata(
                discover_shard_directories(stitched_root)
            )

    def test_incomplete_shard_is_rejected(self, stitched_root):
        (stitched_root / "shard-001" / ".inprogress").touch()
        with pytest.raises(DatasetError, match="incomplete"):
            stitch_sharded_dataset(stitched_root)

    def test_mixed_generation_runs_are_rejected(self, stitched_root):
        metadata_path = stitched_root / "shard-001" / "metadata.json"
        metadata = json.loads(metadata_path.read_text())
        metadata["seed"] = SEED + 1
        metadata_path.write_text(json.dumps(metadata, indent=2))
        with pytest.raises(DatasetError, match="mixed generation runs"):
            stitch_sharded_dataset(stitched_root)

    def test_tampered_viewer_slice_is_rejected(self, stitched_root):
        # A shard from the right run but holding the wrong slice of the
        # population (e.g. machine B ran the wrong --only-shards and its
        # output was renamed into place) must not stitch: the plan stamp
        # catches the renamed copy before the per-slice viewer check would.
        shutil.rmtree(stitched_root / "shard-001")
        shutil.copytree(
            stitched_root / "shard-000", stitched_root / "shard-001"
        )
        with pytest.raises(DatasetError, match="records shard plan index"):
            stitch_sharded_dataset(stitched_root)

    def test_empty_directory_is_rejected_with_guidance(self, tmp_path):
        with pytest.raises(DatasetError, match="no shard-NNN directories"):
            stitch_sharded_dataset(tmp_path)

    def test_discover_excludes_quarantined_debris(self, stitched_root):
        (stitched_root / "shard-000.quarantined-000").mkdir()
        found = discover_shard_directories(stitched_root)
        assert [index for index, _path in found] == [0, 1]

    def test_consistent_metadata_requires_completeness(self, stitched_root):
        (stitched_root / "shard-000" / "metadata.json").unlink()
        with pytest.raises(DatasetError, match="--only-shards 0"):
            load_consistent_shard_metadata(
                discover_shard_directories(stitched_root)
            )


def _record(length: int, label: str | None) -> ClientRecord:
    return ClientRecord(timestamp=0.0, wire_length=length, content_type=23, label=label)


def _observe(accumulator: FingerprintAccumulator, key: str, pairs) -> None:
    accumulator.observe(key, [_record(length, label) for length, label in pairs])


def _finalized(accumulator: FingerprintAccumulator, margin: int = 8) -> dict:
    library = FingerprintLibrary()
    accumulator.finalize_into(library, margin=margin)
    return library.as_dict()


class TestAccumulatorSerialisation:
    def test_save_load_round_trip(self, tmp_path):
        accumulator = FingerprintAccumulator()
        _observe(
            accumulator,
            "linux/firefox",
            [(2200, LABEL_TYPE1), (3000, LABEL_TYPE2), (400, LABEL_OTHER), (500, None)],
        )
        path = tmp_path / "state.json"
        accumulator.save(path)
        loaded = FingerprintAccumulator.load(path)
        assert loaded.as_dict() == accumulator.as_dict()
        assert loaded.record_count == 4
        assert _finalized(loaded) == _finalized(accumulator)

    def test_partial_state_round_trips(self, tmp_path):
        # One record type not yet observed serialises as null and survives.
        accumulator = FingerprintAccumulator()
        _observe(accumulator, "k", [(2200, LABEL_TYPE1)])
        path = tmp_path / "state.json"
        accumulator.save(path)
        loaded = FingerprintAccumulator.load(path)
        assert loaded.as_dict() == accumulator.as_dict()
        _observe(loaded, "k", [(3000, LABEL_TYPE2)])
        fingerprint = loaded.fingerprint("k", margin=0)
        assert fingerprint.type1_band.low == 2200
        assert fingerprint.training_records == 2

    def test_library_file_is_not_accumulator_state(self, tmp_path):
        path = tmp_path / "library.json"
        FingerprintLibrary().save(path)
        with pytest.raises(FingerprintError, match="save-state"):
            FingerprintAccumulator.load(path)

    def test_malformed_state_is_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "environments": {"k": {"record_count": "many"}},
                }
            )
        )
        with pytest.raises(FingerprintError, match="malformed"):
            FingerprintAccumulator.load(path)

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"format_version": 99, "environments": {}}))
        with pytest.raises(FingerprintError, match="version"):
            FingerprintAccumulator.load(path)


class TestAccumulatorMerge:
    def _three_states(self):
        a = FingerprintAccumulator()
        _observe(a, "linux/firefox", [(2200, LABEL_TYPE1), (3000, LABEL_TYPE2)])
        b = FingerprintAccumulator()
        _observe(b, "linux/firefox", [(2190, LABEL_TYPE1), (3050, LABEL_TYPE2)])
        _observe(b, "win/chrome", [(2400, LABEL_TYPE1), (3300, LABEL_TYPE2)])
        c = FingerprintAccumulator()
        _observe(c, "linux/firefox", [(2230, LABEL_TYPE1), (2980, LABEL_TYPE2)])
        _observe(c, "mac/safari", [(2500, LABEL_TYPE1), (3400, LABEL_TYPE2)])
        return a, b, c

    def _reload(self, accumulator: FingerprintAccumulator) -> FingerprintAccumulator:
        return FingerprintAccumulator.from_dict(accumulator.as_dict())

    def test_merge_equals_observing_everything_on_one_accumulator(self):
        a, b, c = self._three_states()
        single = FingerprintAccumulator()
        _observe(
            single,
            "linux/firefox",
            [
                (2200, LABEL_TYPE1),
                (3000, LABEL_TYPE2),
                (2190, LABEL_TYPE1),
                (3050, LABEL_TYPE2),
                (2230, LABEL_TYPE1),
                (2980, LABEL_TYPE2),
            ],
        )
        _observe(single, "win/chrome", [(2400, LABEL_TYPE1), (3300, LABEL_TYPE2)])
        _observe(single, "mac/safari", [(2500, LABEL_TYPE1), (3400, LABEL_TYPE2)])
        merged = self._reload(a).merge(self._reload(b)).merge(self._reload(c))
        assert _finalized(merged) == _finalized(single)

    def test_merge_is_associative_and_order_independent(self, tmp_path):
        a, b, c = self._three_states()
        left = self._reload(a).merge(self._reload(b)).merge(self._reload(c))
        right = self._reload(a).merge(self._reload(b).merge(self._reload(c)))
        reversed_order = self._reload(c).merge(self._reload(b)).merge(self._reload(a))
        assert _finalized(left) == _finalized(right) == _finalized(reversed_order)
        # The saved *libraries* are byte-identical regardless of merge order
        # (sorted keys), so distributed calibration diffs cleanly.
        for name, accumulator in (
            ("left", left),
            ("right", right),
            ("reversed", reversed_order),
        ):
            library = FingerprintLibrary()
            accumulator.finalize_into(library, margin=8)
            library.save(tmp_path / f"{name}.json")
        reference_bytes = (tmp_path / "left.json").read_bytes()
        assert (tmp_path / "right.json").read_bytes() == reference_bytes
        assert (tmp_path / "reversed.json").read_bytes() == reference_bytes

    def test_merge_with_empty_accumulator_is_identity(self):
        a, _b, _c = self._three_states()
        merged = self._reload(a).merge(FingerprintAccumulator())
        assert merged.as_dict() == a.as_dict()
        adopted = FingerprintAccumulator().merge(self._reload(a))
        assert adopted.as_dict() == a.as_dict()

    def test_partial_states_complete_each_other(self):
        # Machine A saw only type-1 records for an environment, machine B
        # only type-2: neither can finalise alone, the merge can.
        a = FingerprintAccumulator()
        _observe(a, "k", [(2200, LABEL_TYPE1)])
        b = FingerprintAccumulator()
        _observe(b, "k", [(3000, LABEL_TYPE2)])
        with pytest.raises(FingerprintError):
            a.fingerprint("k")
        merged = self._reload(a).merge(self._reload(b))
        fingerprint = merged.fingerprint("k", margin=0)
        assert (fingerprint.type1_band.low, fingerprint.type2_band.high) == (
            2200,
            3000,
        )

    def test_per_shard_states_merge_into_the_sharded_training_library(
        self, reference, tmp_path
    ):
        # The end-to-end distributed calibration contract over real sessions:
        # each machine folds one shard, states merge, and the finalised
        # library is byte-identical to train_incremental over the whole root.
        dataset = ShardedDataset.load(reference.directory)
        states: list[Path] = []
        for index, shard_sessions in enumerate(
            dataset.iter_shard_training_sessions()
        ):
            machine = WhiteMirrorAttack()
            accumulator = FingerprintAccumulator()
            machine.train_incremental([shard_sessions], accumulator=accumulator)
            path = tmp_path / f"state-{index}.json"
            accumulator.save(path)
            states.append(path)
        merged = FingerprintAccumulator()
        for path in states:
            merged.merge(FingerprintAccumulator.load(path))
        merged_library = FingerprintLibrary()
        merged.finalize_into(merged_library, margin=8)
        single = WhiteMirrorAttack()
        single.train_incremental(dataset.iter_shard_training_sessions())
        assert merged_library.as_dict() == single.library.as_dict()
        merged_library.save(tmp_path / "merged.json")
        single.library.save(tmp_path / "single.json")
        assert (tmp_path / "merged.json").read_bytes() == (
            tmp_path / "single.json"
        ).read_bytes()


class TestShardMismatchMessagesAreSpecific:
    """A foreign shard's rejection must name the exact mismatched field.

    ``stitch``/``resume`` treat any recorded-field mismatch as "foreign", but
    an operator debugging a distributed run needs to know *which* field —
    seed vs config vs story fingerprint vs viewer slice vs missing traces —
    not just that "the recorded configuration does not match".
    """

    def _mismatch_for(self, shard_directory: Path, metadata_mutator=None) -> str:
        from repro.dataset.collection import default_study_script
        from repro.dataset.population import generate_population
        from repro.dataset.shards import _shard_reuse_mismatch

        if metadata_mutator is not None:
            metadata_path = shard_directory / "metadata.json"
            metadata = json.loads(metadata_path.read_text())
            metadata_mutator(metadata)
            metadata_path.write_text(json.dumps(metadata, indent=2))
        reason = _shard_reuse_mismatch(
            shard_directory,
            plan_shards(VIEWERS, SHARDS)[0],
            SHARDS,
            generate_population(VIEWERS, seed=SEED),
            SEED,
            True,
            "iitm-bandersnatch-synthetic",
            CONFIG,
            default_study_script().fingerprint(),
        )
        assert reason is not None, "tampered shard unexpectedly verified"
        return reason

    @pytest.fixture()
    def shard_copy(self, reference, tmp_path) -> Path:
        copy = tmp_path / "shard-000"
        shutil.copytree(reference.directory / "shard-000", copy)
        return copy

    def test_clean_shard_has_no_mismatch(self, shard_copy):
        from repro.dataset.collection import default_study_script
        from repro.dataset.population import generate_population
        from repro.dataset.shards import _shard_reuse_mismatch

        assert (
            _shard_reuse_mismatch(
                shard_copy,
                plan_shards(VIEWERS, SHARDS)[0],
                SHARDS,
                generate_population(VIEWERS, seed=SEED),
                SEED,
                True,
                "iitm-bandersnatch-synthetic",
                CONFIG,
                default_study_script().fingerprint(),
            )
            is None
        )

    def test_seed_mismatch_names_both_seeds(self, shard_copy):
        reason = self._mismatch_for(
            shard_copy, lambda metadata: metadata.update(seed=SEED + 1)
        )
        assert f"records seed={SEED + 1}" in reason
        assert f"seed={SEED}" in reason

    def test_dataset_name_mismatch_names_both_names(self, shard_copy):
        reason = self._mismatch_for(
            shard_copy, lambda metadata: metadata.update(name="someone-elses-run")
        )
        assert "dataset name 'someone-elses-run'" in reason
        assert "iitm-bandersnatch-synthetic" in reason

    def test_session_config_mismatch_names_the_field(self, shard_copy):
        def flip_cross_traffic(metadata):
            metadata["session_config"]["cross_traffic_enabled"] = True

        reason = self._mismatch_for(shard_copy, flip_cross_traffic)
        assert "session_config" in reason
        assert "cross_traffic_enabled" in reason

    def test_graph_fingerprint_mismatch_names_both_digests(self, shard_copy):
        reason = self._mismatch_for(
            shard_copy,
            lambda metadata: metadata.update(graph_fingerprint="deadbeef"),
        )
        assert "story-graph fingerprint" in reason
        assert "deadbeef" in reason

    def test_shard_plan_mismatch_names_both_plans(self, shard_copy):
        def grow_plan(metadata):
            metadata["shard"]["count"] = SHARDS + 3

        reason = self._mismatch_for(shard_copy, grow_plan)
        assert "shard plan" in reason
        assert f"'count': {SHARDS + 3}" in reason

    def test_viewer_slice_mismatch_names_the_ids(self, shard_copy):
        def rename_first_viewer(metadata):
            metadata["entries"][0]["viewer"]["viewer_id"] = "viewer-999"

        reason = self._mismatch_for(shard_copy, rename_first_viewer)
        assert "holds viewer ids" in reason
        assert "viewer-999" in reason

    def test_missing_trace_names_the_file(self, shard_copy):
        victim = sorted((shard_copy / "traces").glob("*.pcap"))[0]
        victim.unlink()
        reason = self._mismatch_for(shard_copy)
        assert "missing on disk" in reason
        assert victim.name in reason

    def test_unfinalised_shard_is_called_out(self, shard_copy):
        (shard_copy / ".inprogress").touch()
        reason = self._mismatch_for(shard_copy)
        assert "not finalised cleanly" in reason

    def test_stitch_error_carries_the_specific_reason(self, stitched_root):
        # End to end: the stitch failure for a missing pcap must surface the
        # per-field reason, not the old generic "does not match" catch-all.
        victim = sorted((stitched_root / "shard-001" / "traces").glob("*.pcap"))[0]
        victim.unlink()
        with pytest.raises(DatasetError) as excinfo:
            stitch_sharded_dataset(stitched_root)
        message = str(excinfo.value)
        assert "missing on disk" in message
        assert victim.name in message
        assert "--only-shards 1" in message

    def test_stitch_names_a_tampered_viewer_slice(self, stitched_root):
        metadata_path = stitched_root / "shard-001" / "metadata.json"
        metadata = json.loads(metadata_path.read_text())
        metadata["entries"][0]["viewer"]["viewer_id"] = "viewer-404"
        metadata_path.write_text(json.dumps(metadata, indent=2))
        with pytest.raises(DatasetError, match="holds viewer ids"):
            stitch_sharded_dataset(stitched_root)
