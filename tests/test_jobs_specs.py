"""Job-spec serialization: the round-trip property and its failure modes.

The specs are the jobs layer's wire format — a fleet coordinator must be
able to serialise a spec on one machine and rebuild it bit-for-bit on
another.  The property test drives seeded-random specs of every class
through ``to_dict -> json -> from_dict -> to_dict`` and demands a fixed
point; the failure-mode tests pin that a wrong schema version, kind,
field set or payload type fails loudly, naming the problem.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.exceptions import JobError, ReproError
from repro.jobs import SCHEMA_VERSION, SPEC_CLASSES, GenerateJob, TrainJob, job_from_dict
from repro.jobs.specs import JobSpec

CASES_PER_CLASS = 25


def _random_value(rng: random.Random, field: dataclasses.Field) -> object:
    """A plausible random value for one spec field, by type annotation."""
    annotation = str(field.type)
    optional = "None" in annotation
    if optional and rng.random() < 0.3:
        return None
    if "tuple" in annotation:
        return tuple(
            f"state-{rng.randrange(1000)}.json" for _ in range(rng.randrange(1, 4))
        )
    if "bool" in annotation:
        return rng.random() < 0.5
    if "float" in annotation:
        return round(rng.uniform(0.01, 0.99), 3)
    if "int" in annotation:
        return rng.randrange(0, 64)
    return f"path-{rng.randrange(10_000)}"


def _random_spec(rng: random.Random, spec_class: type[JobSpec]) -> JobSpec:
    kwargs = {
        field.name: _random_value(rng, field)
        for field in dataclasses.fields(spec_class)
    }
    return spec_class(**kwargs)


@pytest.mark.parametrize("spec_class", SPEC_CLASSES, ids=lambda cls: cls.KIND)
def test_round_trip_is_a_fixed_point(spec_class):
    rng = random.Random(f"roundtrip-{spec_class.KIND}")
    for _ in range(CASES_PER_CLASS):
        spec = _random_spec(rng, spec_class)
        data = spec.to_dict()
        # The wire form itself survives JSON (tuples already lowered).
        wire = json.loads(json.dumps(data, sort_keys=True))
        rebuilt = job_from_dict(wire)
        assert rebuilt == spec
        assert rebuilt.to_dict() == data


@pytest.mark.parametrize("spec_class", SPEC_CLASSES, ids=lambda cls: cls.KIND)
def test_serialisation_is_deterministic(spec_class):
    # Identical specs must serialise to identical bytes: sorted keys, no
    # dict-ordering leakage.
    rng_a = random.Random(f"bytes-{spec_class.KIND}")
    rng_b = random.Random(f"bytes-{spec_class.KIND}")
    spec_a = _random_spec(rng_a, spec_class)
    spec_b = _random_spec(rng_b, spec_class)
    assert json.dumps(spec_a.to_dict()) == json.dumps(spec_b.to_dict())
    assert list(spec_a.to_dict()) == sorted(spec_a.to_dict())


def test_unknown_schema_version_fails_naming_the_version():
    data = GenerateJob(output="x").to_dict()
    data["schema"] = 99
    with pytest.raises(JobError, match=r"unsupported job spec schema version 99"):
        job_from_dict(data)
    with pytest.raises(JobError, match=rf"speaks schema version {SCHEMA_VERSION}"):
        job_from_dict(data)


def test_missing_schema_version_fails():
    data = GenerateJob(output="x").to_dict()
    del data["schema"]
    with pytest.raises(JobError, match=r"unsupported job spec schema version None"):
        job_from_dict(data)


def test_unknown_kind_fails_listing_known_kinds():
    data = {"job": "frobnicate", "schema": SCHEMA_VERSION}
    with pytest.raises(JobError, match=r"unknown job kind 'frobnicate'") as excinfo:
        job_from_dict(data)
    assert "generate" in str(excinfo.value)
    assert "watch" in str(excinfo.value)


def test_unknown_field_fails_naming_it():
    data = TrainJob(dataset="d", output="o").to_dict()
    data["sharded_workers"] = 2
    with pytest.raises(JobError, match=r"unknown field\(s\) \['sharded_workers'\]"):
        TrainJob.from_dict(data)


def test_wrong_kind_for_class_fails():
    data = GenerateJob(output="x").to_dict()
    with pytest.raises(JobError, match=r"cannot build a 'train' job"):
        TrainJob.from_dict(data)


def test_non_mapping_payload_fails():
    with pytest.raises(JobError, match=r"must be a JSON object, got list"):
        job_from_dict(["generate"])


def test_validate_runs_on_the_runner_path():
    # Validation errors keep their historical CLI wording.
    with pytest.raises(ReproError, match=r"--resume requires --shards"):
        GenerateJob(output="x", resume=True).validate()
