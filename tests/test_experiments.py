"""Tests for the reproduction runners (Table I, Figures 1-2, headline, ablations)."""

from __future__ import annotations

import pytest

from repro.core.features import LABEL_TYPE1, LABEL_TYPE2
from repro.exceptions import AttackError
from repro.experiments.baseline_comparison import reproduce_baseline_comparison
from repro.experiments.conditions import figure2_condition_names, headline_conditions
from repro.experiments.defense_ablation import reproduce_defense_ablation, standard_defense_suite
from repro.experiments.figure1 import reproduce_figure1
from repro.experiments.figure2 import PAPER_BINS, paper_bins_for, reproduce_figure2
from repro.experiments.headline import reproduce_headline
from repro.experiments.report import format_table, render_experiment_report
from repro.experiments.table1 import reproduce_table1


class TestConditions:
    def test_headline_conditions_cover_figure2_environments(self):
        keys = {condition.fingerprint_key for condition in headline_conditions()}
        assert {"linux/firefox", "windows/firefox"} <= keys

    def test_headline_conditions_cover_all_traffic_levels(self):
        traffic = {condition.traffic_condition for condition in headline_conditions()}
        assert traffic == {"morning", "noon", "night"}

    def test_figure2_condition_names(self):
        names = figure2_condition_names()
        assert "Ubuntu" in names["linux/firefox"]
        assert "Windows" in names["windows/firefox"]


class TestTable1:
    def test_rows_and_grid(self):
        result = reproduce_table1(viewer_count=100, seed=0)
        assert result.attribute_count == 9
        assert result.viewer_count == 100
        assert result.full_grid_covered()
        assert "Windows" in result.values_for("Operating System")
        assert "Communist" in result.values_for("Political Alignment")

    def test_unknown_attribute_rejected(self):
        result = reproduce_table1(viewer_count=10, seed=0)
        with pytest.raises(Exception):
            result.values_for("Favourite colour")


class TestFigure1:
    def test_walkthrough_matches_paper(self):
        result = reproduce_figure1(seed=1)
        assert result.matches_paper_description()
        assert result.state_message_kinds == ["type1", "type1", "type2"]

    def test_protocol_event_order(self):
        result = reproduce_figure1(seed=1)
        kinds = [kind for kind, _ in result.protocol_events]
        # Prefetching of the default branch starts only after the question
        # (and its type-1 report) appears.
        assert kinds.index("type1") < kinds.index("prefetch_started")
        assert kinds.index("prefetch_discarded") > kinds.index("type2") - 3
        assert kinds[-1] == "session_finished"


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure2(self):
        return reproduce_figure2(sessions_per_condition=2, seed=2)

    def test_paper_bins_exposed(self):
        assert len(paper_bins_for("linux/firefox")) == 5
        assert len(PAPER_BINS["windows/firefox"]) == 5
        with pytest.raises(AttackError):
            paper_bins_for("mac/safari")

    def test_separation_holds_for_both_conditions(self, figure2):
        assert figure2.separation_holds_everywhere()

    def test_type1_and_type2_concentrate_in_paper_bins(self, figure2):
        ubuntu = figure2.panel_for("linux/firefox")
        assert ubuntu.histogram.dominant_bin(LABEL_TYPE1).label == "2211-2213"
        assert ubuntu.histogram.dominant_bin(LABEL_TYPE2).label == "2992-3017"
        windows = figure2.panel_for("windows/firefox")
        assert windows.histogram.dominant_bin(LABEL_TYPE1).label == "2341-2343"
        assert windows.histogram.dominant_bin(LABEL_TYPE2).label == "3118-3147"

    def test_rows_have_five_bins(self, figure2):
        for distribution in figure2.distributions:
            assert len(distribution.rows()) == 5

    def test_unknown_panel_rejected(self, figure2):
        with pytest.raises(AttackError):
            figure2.panel_for("mac/chrome")


class TestHeadlineSmall:
    """A scaled-down headline run keeps the test suite fast; the full-scale
    run (10 sessions per condition, the paper's setting) lives in the
    benchmark harness."""

    @pytest.fixture(scope="class")
    def headline(self):
        conditions = [headline_conditions()[1], headline_conditions()[4]]
        return reproduce_headline(
            sessions_per_condition=3,
            training_sessions_per_condition=2,
            conditions=conditions,
            seed=3,
        )

    def test_json_identification_accuracy_high(self, headline):
        assert headline.aggregate_json_identification_accuracy >= 0.9
        assert 0.85 <= headline.worst_case_accuracy <= 1.0

    def test_rows_include_summary(self, headline):
        rows = headline.rows()
        assert rows[-2]["condition"] == "AGGREGATE"
        assert rows[-1]["condition"].startswith("WORST CASE")

    def test_gap_to_paper_is_small(self, headline):
        assert headline.worst_case_gap <= 0.06


class TestAblations:
    def test_baseline_comparison_shape(self):
        result = reproduce_baseline_comparison(train_count=2, test_count=2, seed=4)
        rows = result.rows()
        assert len(rows) == 3
        assert result.comparison.white_mirror_accuracy >= 0.9
        assert result.baselines_near_chance or result.comparison.advantage >= 0.25

    def test_defense_suite_contents(self):
        names = {defense.instance_name for defense in standard_defense_suite()}
        assert "pad-to-constant(target_bytes=4096)" in names
        assert "split-records(parts=3)" in names
        assert any(name.startswith("compress") for name in names)

    def test_defense_ablation_degrades_attack(self):
        result = reproduce_defense_ablation(train_count=2, test_count=2, seed=5)
        assert result.undefended_accuracy >= 0.9
        assert result.best_defense.choice_accuracy <= 0.5
        assert len(result.rows()) == len(standard_defense_suite()) + 1


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(
            [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}], title="Demo"
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6

    def test_format_table_rejects_empty(self):
        with pytest.raises(Exception):
            format_table([])

    def test_render_experiment_report_sections(self):
        report = render_experiment_report(
            table1_rows=[{"conditions": "Operational", "attribute": "OS", "values": "x"}],
            figure1_events=[("type1", "Q1")],
            headline_rows=[{"condition": "c", "choice_accuracy": 1.0}],
        )
        assert "Table I" in report
        assert "Figure 1" in report
        assert "Section V" in report

    def test_render_requires_content(self):
        with pytest.raises(Exception):
            render_experiment_report()
