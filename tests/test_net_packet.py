"""Tests for the packet abstraction and frame serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import PacketError
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.headers import TCP_FLAG_SYN
from repro.net.packet import Direction, Packet, push_flags, syn_packet


@pytest.fixture()
def five_tuple() -> FiveTuple:
    return FiveTuple(
        client=Endpoint("192.168.1.23", 51742),
        server=Endpoint("198.51.100.7", 443),
    )


class TestEndpoints:
    def test_endpoint_validation(self):
        with pytest.raises(PacketError):
            Endpoint("not-an-ip", 443)
        with pytest.raises(PacketError):
            Endpoint("10.0.0.1", 0)

    def test_five_tuple_key_and_reverse(self, five_tuple):
        assert five_tuple.key == "192.168.1.23:51742->198.51.100.7:443"
        assert five_tuple.reversed().client == five_tuple.server


class TestPacket:
    def test_direction_determines_source(self, five_tuple):
        up = Packet(1.0, Direction.CLIENT_TO_SERVER, five_tuple, b"abc")
        down = Packet(2.0, Direction.SERVER_TO_CLIENT, five_tuple, b"def")
        assert up.source == five_tuple.client
        assert up.destination == five_tuple.server
        assert down.source == five_tuple.server
        assert down.destination == five_tuple.client

    def test_wire_length_includes_headers(self, five_tuple):
        packet = Packet(1.0, Direction.CLIENT_TO_SERVER, five_tuple, b"x" * 100)
        assert packet.wire_length == 14 + 20 + 20 + 100
        assert packet.payload_length == 100

    def test_negative_timestamp_rejected(self, five_tuple):
        with pytest.raises(PacketError):
            Packet(-1.0, Direction.CLIENT_TO_SERVER, five_tuple, b"")

    def test_with_timestamp_and_retransmission(self, five_tuple):
        packet = Packet(1.0, Direction.CLIENT_TO_SERVER, five_tuple, b"x")
        later = packet.with_timestamp(5.0)
        retransmit = packet.as_retransmission(6.0)
        assert later.timestamp == 5.0 and not later.is_retransmission
        assert retransmit.is_retransmission and retransmit.payload == packet.payload

    def test_serialize_parse_roundtrip(self, five_tuple):
        packet = Packet(
            timestamp=3.25,
            direction=Direction.CLIENT_TO_SERVER,
            five_tuple=five_tuple,
            payload=b"payload-bytes",
            sequence_number=1234,
            acknowledgment_number=99,
            flags=push_flags(),
            annotations={"kind": "type1"},
        )
        frame = packet.serialize_frame()
        parsed = Packet.parse_frame(frame, timestamp=3.25, client_ip="192.168.1.23")
        assert parsed is not None
        assert parsed.direction is Direction.CLIENT_TO_SERVER
        assert parsed.payload == b"payload-bytes"
        assert parsed.sequence_number == 1234
        assert parsed.five_tuple == five_tuple
        # Ground-truth annotations never survive serialization.
        assert parsed.annotations == {}

    def test_parse_frame_downlink_direction(self, five_tuple):
        packet = Packet(
            timestamp=1.0,
            direction=Direction.SERVER_TO_CLIENT,
            five_tuple=five_tuple,
            payload=b"chunk",
            sequence_number=10,
        )
        parsed = Packet.parse_frame(packet.serialize_frame(), 1.0, client_ip="192.168.1.23")
        assert parsed is not None
        assert parsed.direction is Direction.SERVER_TO_CLIENT
        assert parsed.five_tuple == five_tuple

    def test_oversized_payload_rejected_at_serialization(self, five_tuple):
        packet = Packet(1.0, Direction.CLIENT_TO_SERVER, five_tuple, b"x" * 70_000)
        with pytest.raises(PacketError):
            packet.serialize_frame()

    def test_syn_packet_helper(self, five_tuple):
        packet = syn_packet(five_tuple, 0.5)
        assert packet.flags == TCP_FLAG_SYN
        assert packet.payload == b""
