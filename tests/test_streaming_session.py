"""Tests for the end-to-end interactive streaming session simulator."""

from __future__ import annotations

import pytest

from repro.client.json_state import JSON_TYPE_1, JSON_TYPE_2
from repro.exceptions import StreamingError
from repro.streaming.events import EventKind
from repro.streaming.session import SessionConfig, simulate_session


class TestSessionConfig:
    def test_defaults_valid(self):
        SessionConfig()

    def test_invalid_values_rejected(self):
        with pytest.raises(StreamingError):
            SessionConfig(chunk_duration_seconds=0)
        with pytest.raises(StreamingError):
            SessionConfig(media_scale=0)
        with pytest.raises(StreamingError):
            SessionConfig(bulk_report_probability=1.5)
        with pytest.raises(StreamingError):
            SessionConfig(playback_speedup=0)


class TestMinimalSession:
    def test_path_matches_forced_choices(self, minimal_session):
        assert minimal_session.path.default_pattern == (True, False)
        assert minimal_session.path.segment_ids == ("S0", "S1", "S2p")

    def test_state_messages_follow_protocol(self, minimal_session):
        kinds = minimal_session.transmitted_state_message_kinds()
        # One type-1 per question, one type-2 for the single non-default choice.
        assert kinds.count(JSON_TYPE_1) == 2
        assert kinds.count(JSON_TYPE_2) == 1
        # Protocol order: Q1 type-1 ... Q2 type-1 then type-2.
        assert kinds == [JSON_TYPE_1, JSON_TYPE_1, JSON_TYPE_2]

    def test_event_log_contains_prefetch_and_discard(self, minimal_session):
        kinds = [event.kind for event in minimal_session.events]
        assert EventKind.PREFETCH_STARTED in kinds
        assert EventKind.PREFETCH_DISCARDED in kinds
        assert kinds[0] is EventKind.SESSION_STARTED
        assert kinds[-1] is EventKind.SESSION_FINISHED

    def test_question_shown_precedes_type1(self, minimal_session):
        events = list(minimal_session.events)
        for index, event in enumerate(events):
            if event.kind is EventKind.TYPE1_SENT:
                preceding = [e.kind for e in events[:index]]
                assert EventKind.QUESTION_SHOWN in preceding

    def test_packet_timestamps_monotone_per_direction(self, minimal_session):
        from repro.net.packet import Direction

        client = [
            p
            for p in minimal_session.trace.packets
            if p.direction is Direction.CLIENT_TO_SERVER and not p.is_retransmission
        ]
        ordered = sorted(client, key=lambda p: p.sequence_number)
        timestamps = [p.timestamp for p in ordered]
        assert timestamps == sorted(timestamps)


class TestFullSession:
    def test_full_session_answers_every_question(self, ubuntu_session):
        assert ubuntu_session.path.choice_count == 10
        type1_count = ubuntu_session.transmitted_state_message_kinds().count(JSON_TYPE_1)
        # Every question triggers a type-1 unless it was lost (not possible in
        # the wired/noon condition where loss probability is zero).
        assert type1_count == 10

    def test_type2_count_matches_non_default_choices(self, ubuntu_session):
        type2_count = ubuntu_session.transmitted_state_message_kinds().count(JSON_TYPE_2)
        assert type2_count == ubuntu_session.path.non_default_count

    def test_sessions_are_reproducible(self, study_graph, ubuntu_condition, default_behavior):
        first = simulate_session(study_graph, ubuntu_condition, default_behavior, seed=77)
        second = simulate_session(study_graph, ubuntu_condition, default_behavior, seed=77)
        assert first.path.default_pattern == second.path.default_pattern
        assert first.trace.packet_count == second.trace.packet_count
        assert [p.payload for p in first.trace.packets[:50]] == [
            p.payload for p in second.trace.packets[:50]
        ]

    def test_different_seeds_differ(self, study_graph, ubuntu_condition, default_behavior):
        first = simulate_session(study_graph, ubuntu_condition, default_behavior, seed=78)
        second = simulate_session(study_graph, ubuntu_condition, default_behavior, seed=79)
        assert (
            first.path.default_pattern != second.path.default_pattern
            or first.trace.packet_count != second.trace.packet_count
        )

    def test_downlink_dominates_uplink(self, ubuntu_session):
        from repro.net.packet import Direction

        up = sum(
            p.payload_length
            for p in ubuntu_session.trace.packets
            if p.direction is Direction.CLIENT_TO_SERVER
        )
        down = sum(
            p.payload_length
            for p in ubuntu_session.trace.packets
            if p.direction is Direction.SERVER_TO_CLIENT
        )
        assert down > 5 * up

    def test_media_scale_shrinks_trace(self, study_graph, ubuntu_condition, default_behavior):
        small = simulate_session(
            study_graph,
            ubuntu_condition,
            default_behavior,
            seed=80,
            config=SessionConfig(media_scale=0.005, cross_traffic_enabled=False),
        )
        large = simulate_session(
            study_graph,
            ubuntu_condition,
            default_behavior,
            seed=80,
            config=SessionConfig(media_scale=0.02, cross_traffic_enabled=False),
        )
        assert small.trace.total_bytes() < large.trace.total_bytes()

    def test_non_interactive_mode_sends_no_state_messages(
        self, study_graph, ubuntu_condition, default_behavior
    ):
        session = simulate_session(
            study_graph,
            ubuntu_condition,
            default_behavior,
            seed=81,
            config=SessionConfig(interactive=False, cross_traffic_enabled=False),
        )
        assert session.transmitted_state_message_kinds() == []
        assert session.path.choice_count == 0
