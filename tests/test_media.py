"""Tests for the chunked-media model (encoding ladder, chunk maps, manifest)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.media.chunks import build_chunk_map, ladder_chunk_maps
from repro.media.encoding import (
    BitrateLadder,
    EncodingProfile,
    default_ladder,
    vbr_chunk_bytes,
)
from repro.media.manifest import build_manifest
from repro.narrative.segment import Segment
from repro.utils.units import kbps, mbps


class TestEncodingProfile:
    def test_nominal_chunk_bytes(self):
        profile = EncodingProfile("test", kbps(800), "640x480")
        assert profile.nominal_chunk_bytes(4.0) == 400_000

    def test_rejects_zero_bitrate(self):
        with pytest.raises(ConfigurationError):
            EncodingProfile("bad", kbps(0), "x")

    def test_rejects_bad_chunk_duration(self):
        with pytest.raises(ConfigurationError):
            EncodingProfile("test", kbps(800), "x").nominal_chunk_bytes(0)


class TestBitrateLadder:
    def test_default_ladder_is_sorted(self):
        ladder = default_ladder()
        rates = [p.bandwidth.bits_per_second for p in ladder.profiles]
        assert rates == sorted(rates)
        assert ladder.lowest.name == "ld_240p"
        assert ladder.highest.name == "uhd_2160p"

    def test_best_under_picks_highest_affordable(self):
        ladder = default_ladder()
        chosen = ladder.best_under(mbps(3.0))
        assert chosen.name == "hd_720p"

    def test_best_under_falls_back_to_lowest(self):
        ladder = default_ladder()
        assert ladder.best_under(kbps(100)).name == ladder.lowest.name

    def test_by_name_and_index(self):
        ladder = default_ladder()
        profile = ladder.by_name("hd_1080p")
        assert ladder.index_of(profile) == 3
        with pytest.raises(ConfigurationError):
            ladder.by_name("nope")

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            BitrateLadder([])

    def test_duplicate_names_rejected(self):
        profile = EncodingProfile("dup", kbps(100), "x")
        other = EncodingProfile("dup", kbps(200), "y")
        with pytest.raises(ConfigurationError):
            BitrateLadder([profile, other])


class TestVbrChunks:
    def test_deterministic_per_content_seed(self):
        profile = default_ladder().by_name("hd_1080p")
        first = vbr_chunk_bytes(profile, 4.0, 99, "S1", 0)
        second = vbr_chunk_bytes(profile, 4.0, 99, "S1", 0)
        assert first == second

    def test_different_chunks_differ(self):
        profile = default_ladder().by_name("hd_1080p")
        sizes = {vbr_chunk_bytes(profile, 4.0, 99, "S1", index) for index in range(10)}
        assert len(sizes) > 1

    def test_zero_sigma_gives_nominal(self):
        profile = default_ladder().by_name("hd_1080p")
        assert vbr_chunk_bytes(profile, 4.0, 99, "S1", 0, complexity_sigma=0.0) == (
            profile.nominal_chunk_bytes(4.0)
        )


class TestChunkMap:
    def test_chunk_map_covers_segment(self):
        segment = Segment("S1", "x", duration_seconds=10.0)
        chunk_map = build_chunk_map(segment, default_ladder().lowest, 4.0, content_seed=1)
        assert len(chunk_map) == 3
        assert chunk_map.total_seconds == pytest.approx(10.0)
        assert chunk_map.total_bytes > 0
        assert chunk_map[0].chunk_id.startswith("S1/0@")

    def test_ladder_chunk_maps_has_every_rung(self):
        segment = Segment("S1", "x", duration_seconds=8.0)
        maps = ladder_chunk_maps(segment, default_ladder(), 4.0, content_seed=1)
        assert set(maps) == {p.name for p in default_ladder().profiles}

    def test_higher_quality_means_more_bytes(self):
        segment = Segment("S1", "x", duration_seconds=20.0)
        maps = ladder_chunk_maps(segment, default_ladder(), 4.0, content_seed=1)
        assert maps["uhd_2160p"].total_bytes > maps["ld_240p"].total_bytes


class TestManifest:
    def test_manifest_contains_all_segments(self, minimal_graph):
        manifest = build_manifest(minimal_graph, content_seed=5)
        assert set(manifest.segment_ids) == set(minimal_graph.segment_ids)

    def test_manifest_deterministic(self, minimal_graph):
        first = build_manifest(minimal_graph, content_seed=5)
        second = build_manifest(minimal_graph, content_seed=5)
        assert first.total_bytes("hd_1080p") == second.total_bytes("hd_1080p")

    def test_manifest_differs_across_content_seeds(self, minimal_graph):
        first = build_manifest(minimal_graph, content_seed=5)
        second = build_manifest(minimal_graph, content_seed=6)
        assert first.total_bytes("hd_1080p") != second.total_bytes("hd_1080p")

    def test_segment_chunks_lookup_errors(self, minimal_graph):
        manifest = build_manifest(minimal_graph, content_seed=5)
        with pytest.raises(Exception):
            manifest.segment_chunks("nope", "hd_1080p")
        with pytest.raises(ConfigurationError):
            manifest.segment_chunks("S0", "nope")

    def test_describe(self, minimal_graph):
        manifest = build_manifest(minimal_graph, content_seed=5)
        description = manifest.describe()
        assert description["segments"] == minimal_graph.segment_count
        assert description["total_bytes_highest_quality"] > 0
