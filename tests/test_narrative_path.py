"""Tests for viewing paths and path enumeration."""

from __future__ import annotations

import pytest

from repro.exceptions import NarrativeError
from repro.narrative.bandersnatch import build_minimal_interactive_script
from repro.narrative.path import ViewingPath, enumerate_paths, path_from_choices


class TestPathFromChoices:
    def test_all_defaults(self, minimal_graph):
        path = path_from_choices(minimal_graph, [True, True])
        assert path.segment_ids == ("S0", "S1", "S2")
        assert path.default_pattern == (True, True)
        assert path.non_default_count == 0

    def test_mixed_choices(self, minimal_graph):
        path = path_from_choices(minimal_graph, [True, False])
        assert path.segment_ids == ("S0", "S1", "S2p")
        assert path.matches_choices([True, False])
        assert not path.matches_choices([True, True])

    def test_partial_pattern_stops_early(self, minimal_graph):
        path = path_from_choices(minimal_graph, [False])
        assert path.segment_ids == ("S0", "S1p")
        assert path.choice_count == 1

    def test_surplus_pattern_ignored_after_ending(self, minimal_graph):
        path = path_from_choices(minimal_graph, [True, True, False, False])
        assert path.choice_count == 2

    def test_question_ids_and_labels(self, minimal_graph):
        path = path_from_choices(minimal_graph, [False, True])
        assert path.question_ids() == ("Q1", "Q2@S1p")
        assert path.selected_labels()[0] == "option_alternate_1"


class TestViewingPath:
    def test_requires_at_least_one_segment(self):
        with pytest.raises(NarrativeError):
            ViewingPath(segment_ids=(), choices=())


class TestEnumeratePaths:
    def test_minimal_script_has_four_complete_paths(self):
        graph = build_minimal_interactive_script()
        paths = list(enumerate_paths(graph))
        assert len(paths) == 4
        patterns = {path.default_pattern for path in paths}
        assert patterns == {(True, True), (True, False), (False, True), (False, False)}

    def test_every_enumerated_path_ends_at_an_ending(self):
        graph = build_minimal_interactive_script()
        for path in enumerate_paths(graph):
            assert graph.segment(path.segment_ids[-1]).is_ending
