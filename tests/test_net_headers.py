"""Tests for binary header construction and parsing."""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import PacketError
from repro.net.headers import (
    ETHERNET_HEADER_LENGTH,
    IPV4_HEADER_LENGTH,
    TCP_HEADER_LENGTH,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    checksum16,
    format_ipv4,
    parse_ipv4,
    parse_mac,
)


class TestChecksum:
    def test_checksum_of_zeroes(self):
        assert checksum16(b"\x00" * 8) == 0xFFFF

    def test_checksum_detects_change(self):
        data = bytes(range(20))
        altered = bytes([data[0] ^ 0xFF]) + data[1:]
        assert checksum16(data) != checksum16(altered)

    def test_odd_length_padded(self):
        assert isinstance(checksum16(b"\x01\x02\x03"), int)


class TestAddressParsing:
    def test_ipv4_roundtrip(self):
        assert format_ipv4(parse_ipv4("192.168.1.23")) == "192.168.1.23"

    def test_ipv4_invalid(self):
        for bad in ("1.2.3", "1.2.3.256", "a.b.c.d"):
            with pytest.raises(PacketError):
                parse_ipv4(bad)

    def test_mac_parse(self):
        assert parse_mac("02:00:00:00:00:01") == b"\x02\x00\x00\x00\x00\x01"
        with pytest.raises(PacketError):
            parse_mac("02:00:00")


class TestEthernetHeader:
    def test_roundtrip(self):
        header = EthernetHeader("02:00:00:00:00:02", "02:00:00:00:00:01")
        parsed, size = EthernetHeader.parse(header.serialize())
        assert size == ETHERNET_HEADER_LENGTH
        assert parsed.destination_mac == "02:00:00:00:00:02"
        assert parsed.ethertype == 0x0800

    def test_truncated(self):
        with pytest.raises(PacketError):
            EthernetHeader.parse(b"\x00" * 5)


class TestIPv4Header:
    def test_roundtrip(self):
        header = IPv4Header("10.0.0.1", "10.0.0.2", total_length=60, identification=7)
        parsed, size = IPv4Header.parse(header.serialize())
        assert size == IPV4_HEADER_LENGTH
        assert parsed.source == "10.0.0.1"
        assert parsed.destination == "10.0.0.2"
        assert parsed.total_length == 60
        assert parsed.identification == 7

    def test_checksum_is_valid(self):
        header = IPv4Header("10.0.0.1", "10.0.0.2", total_length=40).serialize()
        # Recomputing the checksum over the header (checksum field included)
        # must give zero for a correct checksum.
        assert checksum16(header) == 0

    def test_invalid_total_length(self):
        with pytest.raises(PacketError):
            IPv4Header("10.0.0.1", "10.0.0.2", total_length=5)

    def test_parse_rejects_non_ipv4(self):
        raw = bytearray(IPv4Header("10.0.0.1", "10.0.0.2", total_length=40).serialize())
        raw[0] = (6 << 4) | 5
        with pytest.raises(PacketError):
            IPv4Header.parse(bytes(raw))


class TestTCPHeader:
    def test_roundtrip(self):
        header = TCPHeader(
            source_port=51742,
            destination_port=443,
            sequence_number=1000,
            acknowledgment_number=55,
            flags=0x18,
        )
        raw = header.serialize("10.0.0.1", "10.0.0.2", b"hello")
        parsed, size = TCPHeader.parse(raw)
        assert size == TCP_HEADER_LENGTH
        assert parsed.source_port == 51742
        assert parsed.destination_port == 443
        assert parsed.sequence_number == 1000
        assert parsed.flags == 0x18

    def test_invalid_port(self):
        with pytest.raises(PacketError):
            TCPHeader(0, 443, 0, 0, 0)

    def test_truncated(self):
        with pytest.raises(PacketError):
            TCPHeader.parse(b"\x00" * 10)
