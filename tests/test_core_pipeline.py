"""Tests for the end-to-end White Mirror attack pipeline."""

from __future__ import annotations

import pytest

from repro.core.classifier import MLRecordClassifier
from repro.core.evaluation import (
    aggregate_choice_accuracy,
    aggregate_json_identification_accuracy,
    evaluate_record_classification,
    worst_case_accuracy,
)
from repro.core.pipeline import WhiteMirrorAttack
from repro.exceptions import AttackError, FingerprintError
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.net.capture import CapturedTrace
from repro.streaming.session import simulate_session


class TestTraining:
    def test_training_builds_per_environment_fingerprints(self, trained_attack):
        assert "linux/firefox" in trained_attack.library
        assert "windows/firefox" in trained_attack.library

    def test_fingerprints_match_figure2_bands(self, trained_attack):
        ubuntu = trained_attack.library.get("linux/firefox")
        # Learned bands must contain the paper's published ranges.
        assert ubuntu.type1_band.low <= 2211 and ubuntu.type1_band.high >= 2213
        assert ubuntu.type2_band.low <= 2992 and ubuntu.type2_band.high >= 3017
        windows = trained_attack.library.get("windows/firefox")
        assert windows.type1_band.low <= 2341 and windows.type1_band.high >= 2343

    def test_training_with_no_sessions_rejected(self, study_graph):
        with pytest.raises(AttackError):
            WhiteMirrorAttack(graph=study_graph).train([])

    def test_negative_margin_rejected(self):
        with pytest.raises(AttackError):
            WhiteMirrorAttack(band_margin=-1)


class TestAttack:
    def test_recovers_choices_in_clean_conditions(self, trained_attack, ubuntu_session):
        result = trained_attack.attack_session(ubuntu_session)
        assert result.recovered_pattern == ubuntu_session.ground_truth_pattern
        assert result.reconstructed_path is not None
        assert result.reconstructed_path.default_pattern == ubuntu_session.path.default_pattern
        assert result.profile is not None

    def test_windows_environment_also_recovered(self, trained_attack, windows_session):
        result = trained_attack.attack_session(windows_session)
        assert result.recovered_pattern == windows_session.ground_truth_pattern

    def test_unknown_environment_rejected(self, trained_attack, ubuntu_session):
        with pytest.raises(FingerprintError):
            trained_attack.attack_trace(
                ubuntu_session.trace, condition_key="mac/safari"
            )

    def test_attack_from_pcap_only(self, tmp_path, trained_attack, ubuntu_session):
        """The attack works on a pcap with no simulator metadata at all."""
        path = tmp_path / "victim.pcap"
        ubuntu_session.trace.to_pcap(path)
        restored = CapturedTrace.from_pcap(
            path,
            client_ip=ubuntu_session.trace.client_ip,
            server_ip=ubuntu_session.trace.server_ip,
        )
        result = trained_attack.attack_trace(restored, condition_key="linux/firefox")
        assert result.recovered_pattern == ubuntu_session.ground_truth_pattern

    def test_evaluation_scores(self, trained_attack, ubuntu_session):
        result = trained_attack.attack_session(ubuntu_session)
        evaluation = result.evaluate_against(ubuntu_session)
        assert evaluation.choice_accuracy == pytest.approx(1.0)
        assert evaluation.json_identification_accuracy == pytest.approx(1.0)
        assert evaluation.exact_path_recovered

    def test_evaluate_sessions_batch(self, trained_attack, ubuntu_session, windows_session):
        evaluations = trained_attack.evaluate_sessions([ubuntu_session, windows_session])
        assert len(evaluations) == 2
        assert aggregate_choice_accuracy(evaluations) == pytest.approx(1.0)
        assert aggregate_json_identification_accuracy(evaluations) == pytest.approx(1.0)

    def test_ml_classifier_training_path(self, trained_attack, training_sessions, ubuntu_session):
        # Like the band fingerprints, a generic estimator is trained per
        # environment (record-length bands differ between OS/browser stacks,
        # so pooling environments would smear the classes together).
        ubuntu_training = [
            session
            for session in training_sessions
            if session.condition.fingerprint_key == "linux/firefox"
        ]
        classifier = trained_attack.train_ml_classifier(
            ubuntu_training, MLRecordClassifier(GaussianNaiveBayes())
        )
        from repro.core.features import extract_client_records
        from repro.core.inference import infer_choices

        records = extract_client_records(
            ubuntu_session.trace, server_ip=ubuntu_session.trace.server_ip
        )
        labels = classifier.classify(records)
        inferred = infer_choices(records, labels)
        assert inferred.default_pattern == ubuntu_session.ground_truth_pattern


class TestEvaluationHelpers:
    def test_worst_case_accuracy(self):
        condition, accuracy = worst_case_accuracy({"a": 0.99, "b": 0.96, "c": 1.0})
        assert condition == "b"
        assert accuracy == pytest.approx(0.96)

    def test_worst_case_requires_data(self):
        with pytest.raises(AttackError):
            worst_case_accuracy({})

    def test_record_classification_confusion_matrix(self, trained_attack, ubuntu_session):
        result = trained_attack.attack_session(ubuntu_session)
        confusion = evaluate_record_classification(result.records, result.predicted_labels)
        assert confusion.accuracy == pytest.approx(1.0)
        assert confusion.count("type1", "type1") == 10
