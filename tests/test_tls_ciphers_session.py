"""Tests for cipher-suite size models, handshake simulation and the TLS session."""

from __future__ import annotations

import pytest

from repro.exceptions import TLSError
from repro.tls.ciphers import CIPHER_SUITES, cipher_by_name, default_cipher
from repro.tls.handshake import simulate_handshake
from repro.tls.records import ContentType, MAX_PLAINTEXT_FRAGMENT
from repro.tls.session import TLSSession
from repro.utils.rng import RandomSource


class TestCipherSpecs:
    def test_gcm_tls12_overhead_is_24(self):
        cipher = cipher_by_name("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256")
        assert cipher.ciphertext_length(1000) == 1024
        assert cipher.overhead() == 24

    def test_chacha_overhead_is_16(self):
        cipher = cipher_by_name("TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256")
        assert cipher.overhead() == 16

    def test_cbc_pads_to_block(self):
        cipher = cipher_by_name("TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA")
        # CBC output length is a step function of the plaintext length.
        lengths = {cipher.ciphertext_length(size) for size in range(100, 108)}
        assert all(length % 16 == 0 for length in lengths)

    def test_tls13_overhead_is_17(self):
        cipher = cipher_by_name("TLS_AES_128_GCM_SHA256")
        assert cipher.overhead() == 17

    def test_unknown_suite_rejected(self):
        with pytest.raises(TLSError):
            cipher_by_name("TLS_NULL_WITH_NULL_NULL")

    def test_rejects_non_positive_plaintext(self):
        with pytest.raises(TLSError):
            default_cipher().ciphertext_length(0)

    def test_encrypt_length_and_determinism(self):
        cipher = default_cipher()
        ciphertext = cipher.encrypt(b"hello world", 3, "key")
        assert len(ciphertext) == cipher.ciphertext_length(11)
        assert ciphertext == cipher.encrypt(b"hello world", 3, "key")
        assert ciphertext != cipher.encrypt(b"hello world", 4, "key")

    def test_encrypt_rejects_negative_sequence(self):
        with pytest.raises(TLSError):
            default_cipher().encrypt(b"x", -1, "key")

    def test_all_registered_suites_expand(self):
        for cipher in CIPHER_SUITES.values():
            assert cipher.ciphertext_length(500) > 500


class TestHandshake:
    def test_handshake_structure(self):
        entries = simulate_handshake(default_cipher(), RandomSource(1))
        assert entries[0].description == "ClientHello"
        assert entries[0].from_client
        assert any(e.description == "Certificate" and not e.from_client for e in entries)
        assert all(
            e.record.content_type in (ContentType.HANDSHAKE, ContentType.CHANGE_CIPHER_SPEC)
            for e in entries
        )

    def test_handshake_sizes_jitter_but_stay_plausible(self):
        first = simulate_handshake(default_cipher(), RandomSource(1))
        second = simulate_handshake(default_cipher(), RandomSource(2))
        client_hello_sizes = {first[0].record.length, second[0].record.length}
        assert all(500 <= size <= 530 for size in client_hello_sizes)


class TestTLSSession:
    def test_small_payload_single_record(self):
        session = TLSSession(key_id="test")
        records = session.protect(b"x" * 100)
        assert len(records) == 1
        assert records[0].content_type is ContentType.APPLICATION_DATA
        assert records[0].length == session.cipher.ciphertext_length(100)

    def test_large_payload_fragments(self):
        session = TLSSession(key_id="test")
        payload = b"y" * (MAX_PLAINTEXT_FRAGMENT * 2 + 100)
        records = session.protect(payload)
        assert len(records) == 3
        assert session.records_sent == 3

    def test_empty_payload_rejected(self):
        with pytest.raises(TLSError):
            TLSSession(key_id="test").protect(b"")

    def test_record_length_for_matches_protect(self):
        session = TLSSession(key_id="a")
        expected = session.record_length_for(2183)
        actual = TLSSession(key_id="a").protect(b"z" * 2183)[0].wire_length
        assert expected == actual

    def test_record_length_for_rejects_oversized(self):
        with pytest.raises(TLSError):
            TLSSession(key_id="a").record_length_for(MAX_PLAINTEXT_FRAGMENT + 1)

    def test_figure2_calibration_ubuntu_type1(self):
        # A 2183-byte type-1 payload must produce a record in the paper's
        # 2211-2213 band under the default cipher suite.
        session = TLSSession(key_id="calibration")
        assert 2211 <= session.record_length_for(2183) <= 2213

    def test_different_key_ids_produce_different_ciphertext(self):
        a = TLSSession(key_id="a").protect(b"payload" * 10)[0]
        b = TLSSession(key_id="b").protect(b"payload" * 10)[0]
        assert a.ciphertext != b.ciphertext
        assert a.length == b.length
