"""Columnar shard sidecars: presence, equivalence, and staleness.

The sidecar (`traces/records.npz`) is a pure cache: with it present, absent,
or stale, `train --sharded` and `repro attack` must produce byte-identical
artifacts.  Stale sidecars are additionally *scrambled* here so any read of
their contents — rather than a fallback to the pcaps — would corrupt the
output and fail the comparison.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.cli.main import main
from repro.core.fingerprint import FingerprintAccumulator
from repro.dataset.sidecar import (
    SIDECAR_FILENAME,
    ShardSidecar,
    fold_shard_sidecar,
    load_sidecar_cached,
)


@pytest.fixture(scope="module")
def sharded_dir(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("sidecar-dataset")
    exit_code = main(
        [
            "generate-dataset",
            str(directory),
            "--viewers",
            "4",
            "--seed",
            "5",
            "--shards",
            "2",
            "--no-cross-traffic",
        ]
    )
    assert exit_code == 0
    return directory


def _copy_dataset(source: Path, destination: Path) -> Path:
    shutil.copytree(source, destination)
    return destination


def _delete_sidecars(root: Path) -> int:
    removed = 0
    for sidecar in root.rglob(SIDECAR_FILENAME):
        sidecar.unlink()
        removed += 1
    return removed


def _stale_and_scramble_sidecars(root: Path) -> None:
    """Make every pcap newer than its sidecar, then corrupt the sidecar so
    that reading it (instead of falling back to the pcaps) is detectable."""
    for sidecar in root.rglob(SIDECAR_FILENAME):
        sidecar.write_bytes(b"not an npz archive, and the wrong size too")
        future = max(
            path.stat().st_mtime_ns
            for path in sidecar.parent.glob("*.pcap")
        ) + 10_000_000_000
        for pcap in sidecar.parent.glob("*.pcap"):
            os.utime(pcap, ns=(future, future))


class TestSidecarOnDisk:
    def test_every_shard_gets_a_sidecar(self, sharded_dir):
        for shard in ("shard-000", "shard-001"):
            assert (sharded_dir / shard / "traces" / SIDECAR_FILENAME).is_file()

    def test_sidecar_indexes_every_capture(self, sharded_dir):
        traces = sharded_dir / "shard-000" / "traces"
        sidecar = ShardSidecar.load(traces)
        assert sidecar is not None
        pcaps = sorted(traces.glob("*.pcap"))
        assert sidecar.capture_count == len(pcaps)
        for pcap in pcaps:
            records = sidecar.records_for(pcap)
            assert records is not None
            assert records.record_count == len(records.wire_lengths)
            assert records.record_count > 0
            assert records.client_records()

    def test_fold_matches_metadata_counts(self, sharded_dir):
        shard = sharded_dir / "shard-000"
        accumulator = FingerprintAccumulator()
        folded = fold_shard_sidecar(shard, accumulator)
        assert folded is not None and folded > 0

    def test_cache_revalidates_on_change(self, sharded_dir, tmp_path):
        copy = _copy_dataset(sharded_dir, tmp_path / "copy")
        traces = copy / "shard-000" / "traces"
        assert load_sidecar_cached(traces) is not None
        (traces / SIDECAR_FILENAME).write_bytes(b"garbage")
        assert load_sidecar_cached(traces) is None


class TestTrainShardedEquivalence:
    def _train(self, dataset: Path, library: Path, capsys) -> tuple[bytes, str]:
        exit_code = main(["train", str(dataset), str(library), "--sharded"])
        output = capsys.readouterr().out
        assert exit_code == 0
        return library.read_bytes(), output

    def test_library_identical_with_and_without_sidecars(
        self, sharded_dir, tmp_path, capsys
    ):
        with_sidecar, output = self._train(
            sharded_dir, tmp_path / "with.json", capsys
        )
        assert "folded 2/2 shard(s) from columnar sidecars" in output

        absent = _copy_dataset(sharded_dir, tmp_path / "absent")
        assert _delete_sidecars(absent) == 2
        without_sidecar, output = self._train(
            absent, tmp_path / "without.json", capsys
        )
        assert "folded" not in output

        assert with_sidecar == without_sidecar

    def test_stale_scrambled_sidecars_are_ignored(
        self, sharded_dir, tmp_path, capsys
    ):
        reference, _ = self._train(sharded_dir, tmp_path / "ref.json", capsys)

        stale = _copy_dataset(sharded_dir, tmp_path / "stale")
        _stale_and_scramble_sidecars(stale)
        from_pcaps, output = self._train(stale, tmp_path / "stale.json", capsys)
        assert "folded" not in output
        assert from_pcaps == reference

    def test_partial_staleness_rejects_the_whole_shard(
        self, sharded_dir, tmp_path, capsys
    ):
        # Touching ONE pcap in shard-000 must stop that shard folding (no
        # half-stale folds) while shard-001 still folds.
        mixed = _copy_dataset(sharded_dir, tmp_path / "mixed")
        victim = sorted((mixed / "shard-000" / "traces").glob("*.pcap"))[0]
        stamp = victim.stat().st_mtime_ns + 10_000_000_000
        os.utime(victim, ns=(stamp, stamp))
        reference, _ = self._train(sharded_dir, tmp_path / "ref2.json", capsys)
        mixed_bytes, output = self._train(mixed, tmp_path / "mixed.json", capsys)
        assert "folded 1/2 shard(s) from columnar sidecars" in output
        assert mixed_bytes == reference


class TestAttackEquivalence:
    def _attack(self, traces: Path, library: Path, log: Path, capsys) -> bytes:
        exit_code = main(
            ["attack", str(traces), str(library), "--results-log", str(log)]
        )
        capsys.readouterr()
        assert exit_code == 0
        return log.read_bytes()

    @pytest.fixture(scope="class")
    def library_path(self, sharded_dir, tmp_path_factory) -> Path:
        library = tmp_path_factory.mktemp("sidecar-lib") / "lib.json"
        assert main(["train", str(sharded_dir), str(library), "--sharded"]) == 0
        return library

    def test_results_log_identical_with_and_without_sidecar(
        self, sharded_dir, library_path, tmp_path, capsys
    ):
        with_sidecar = self._attack(
            sharded_dir / "shard-001" / "traces",
            library_path,
            tmp_path / "with.jsonl",
            capsys,
        )
        assert with_sidecar  # the log actually recorded verdicts

        absent = _copy_dataset(sharded_dir, tmp_path / "absent")
        _delete_sidecars(absent)
        without_sidecar = self._attack(
            absent / "shard-001" / "traces",
            library_path,
            tmp_path / "without.jsonl",
            capsys,
        )
        assert with_sidecar == without_sidecar

    def test_results_log_identical_with_stale_scrambled_sidecar(
        self, sharded_dir, library_path, tmp_path, capsys
    ):
        reference = self._attack(
            sharded_dir / "shard-001" / "traces",
            library_path,
            tmp_path / "ref.jsonl",
            capsys,
        )
        stale = _copy_dataset(sharded_dir, tmp_path / "stale")
        _stale_and_scramble_sidecars(stale)
        from_pcaps = self._attack(
            stale / "shard-001" / "traces",
            library_path,
            tmp_path / "stale.jsonl",
            capsys,
        )
        assert from_pcaps == reference

    def test_sidecar_actually_supplies_the_fast_path(
        self, sharded_dir, library_path, tmp_path, capsys
    ):
        # Corrupt every pcap body while keeping the fresh sidecar: if the
        # attack still succeeds with the same verdicts, the records came
        # from the sidecar, not from parsing the (now broken) pcaps.
        reference = self._attack(
            sharded_dir / "shard-001" / "traces",
            library_path,
            tmp_path / "ref.jsonl",
            capsys,
        )
        hollow = _copy_dataset(sharded_dir, tmp_path / "hollow")
        traces = hollow / "shard-001" / "traces"
        sidecar_mtime = (traces / SIDECAR_FILENAME).stat().st_mtime_ns
        for pcap in traces.glob("*.pcap"):
            size = pcap.stat().st_size
            stat = pcap.stat()
            pcap.write_bytes(b"\x00" * size)  # same size, same mtime below
            os.utime(pcap, ns=(stat.st_mtime_ns, min(stat.st_mtime_ns, sidecar_mtime)))
        from_sidecar = self._attack(
            traces, library_path, tmp_path / "hollow.jsonl", capsys
        )

        def verdicts(log: bytes) -> list[dict]:
            lines = [json.loads(line) for line in log.splitlines()]
            for line in lines:
                # The log fingerprints the pcap *contents*, which this test
                # deliberately destroyed; every attack-derived field must
                # still match because the records came from the sidecar.
                line.pop("fingerprint")
            return lines

        assert verdicts(from_sidecar) == verdicts(reference)
        assert len(verdicts(reference)) > 0


class TestSidecarUnitBehaviour:
    def test_unknown_pcap_is_not_served(self, sharded_dir):
        traces = sharded_dir / "shard-000" / "traces"
        sidecar = ShardSidecar.load(traces)
        assert sidecar.records_for(traces / "no-such-capture.pcap") is None

    def test_size_mismatch_is_not_served(self, sharded_dir, tmp_path):
        copy = _copy_dataset(sharded_dir, tmp_path / "copy")
        traces = copy / "shard-000" / "traces"
        pcap = sorted(traces.glob("*.pcap"))[0]
        sidecar = ShardSidecar.load(traces)
        assert sidecar.records_for(pcap) is not None
        mtime = pcap.stat().st_mtime_ns
        pcap.write_bytes(pcap.read_bytes() + b"\x00")
        os.utime(pcap, ns=(mtime, mtime))  # size changed, mtime unchanged
        assert sidecar.records_for(pcap) is None

    def test_version_bump_invalidates(self, sharded_dir, tmp_path):
        copy = _copy_dataset(sharded_dir, tmp_path / "copy")
        traces = copy / "shard-000" / "traces"
        path = traces / SIDECAR_FILENAME
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["format_version"] = np.asarray([999], dtype=np.int64)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        assert ShardSidecar.load(traces) is None

    def test_fold_rejects_shard_missing_metadata_entries(
        self, sharded_dir, tmp_path
    ):
        # Remove one capture's sidecar coverage by deleting the pcap from
        # metadata's perspective: drop the pcap file itself so records_for
        # fails its stat and the whole shard refuses to fold.
        copy = _copy_dataset(sharded_dir, tmp_path / "copy")
        shard = copy / "shard-000"
        victim = sorted((shard / "traces").glob("*.pcap"))[0]
        victim.unlink()
        assert fold_shard_sidecar(shard, FingerprintAccumulator()) is None

    def test_metadata_lists_trace_files(self, sharded_dir):
        # The fold path resolves metadata trace_file names against the
        # sidecar index; make sure the dataset layout this test relies on
        # still holds.
        metadata = json.loads(
            (sharded_dir / "shard-000" / "metadata.json").read_text()
        )
        assert all("trace_file" in entry for entry in metadata["entries"])
