"""Tests for the classifier and environment-transfer ablations."""

from __future__ import annotations

import pytest

from repro.exceptions import AttackError
from repro.experiments.ablation_classifiers import reproduce_classifier_ablation
from repro.experiments.ablation_transfer import (
    DEFAULT_TRANSFER_CONDITIONS,
    reproduce_transfer_ablation,
)


class TestClassifierAblation:
    @pytest.fixture(scope="class")
    def result(self):
        # Generic estimators (especially k-NN with k=7) need a handful of
        # type-2 examples to vote with, so the training set matches the
        # benchmark's four sessions.
        return reproduce_classifier_ablation(train_count=4, test_count=3, seed=6)

    def test_every_strategy_scored(self, result):
        names = {score.name for score in result.scores}
        assert "band fingerprint (paper)" in names
        assert "k-nearest neighbours (k=7)" in names
        assert "logistic regression" in names
        assert len(result.rows()) == len(result.scores)

    def test_band_rule_is_near_perfect(self, result):
        assert result.band_rule_score.json_identification_accuracy >= 0.95

    def test_nonlinear_strategies_match_the_band_rule(self, result):
        assert result.nonlinear_strategies_work

    def test_linear_model_cannot_express_the_bands(self, result):
        assert result.linear_model_fails

    def test_unknown_classifier_lookup_raises(self, result):
        with pytest.raises(AttackError):
            result.score_for("quantum svm")

    def test_invalid_counts_rejected(self):
        with pytest.raises(AttackError):
            reproduce_classifier_ablation(train_count=0, test_count=1)


class TestTransferAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return reproduce_transfer_ablation(
            sessions_per_environment=1,
            training_sessions_per_environment=2,
            seed=8,
            conditions=DEFAULT_TRANSFER_CONDITIONS[:3],
        )

    def test_matrix_is_square_over_environments(self, result):
        assert len(result.environments) == 3
        for trained_on in result.environments:
            for attacked in result.environments:
                assert 0.0 <= result.accuracy(trained_on, attacked) <= 1.0

    def test_diagonal_beats_off_diagonal(self, result):
        assert result.mean_diagonal >= 0.9
        assert result.mean_off_diagonal <= 0.3
        assert result.calibration_is_required

    def test_cross_environment_accuracy_is_zero_for_figure2_pair(self, result):
        assert result.accuracy("linux/firefox", "windows/firefox") <= 0.1
        assert result.accuracy("windows/firefox", "linux/firefox") <= 0.1

    def test_rows_shape(self, result):
        rows = result.rows()
        assert len(rows) == 3
        assert set(rows[0]) == {"trained on \\ attacked", *result.environments}

    def test_unknown_pair_rejected(self, result):
        with pytest.raises(AttackError):
            result.accuracy("linux/firefox", "mac/safari")

    def test_invalid_counts_rejected(self):
        with pytest.raises(AttackError):
            reproduce_transfer_ablation(sessions_per_environment=0)
