#!/usr/bin/env python3
"""A watch fleet: many capture boxes, one bounded queue, one results log.

An eavesdropper rarely has a single capture box.  This example scales the
live-ingest story (``examples/live_ingest.py``) to a *fleet* — what
``repro watch --source A --source B --source C`` runs — and demonstrates
the three properties the fleet layer adds:

1. **Bounded backpressure**: three capture boxes flood their drop
   directories at once, but the ingest queue is capped by a high
   watermark; the overflow parks per source (observably — a saturation
   callback fires) and is promoted once the queue drains, so memory stays
   bounded however fast the boxes publish.
2. **Hot library reload**: mid-run, a freshly calibrated fingerprint
   library is staged over the reload path; the fleet swaps it in between
   captures — never mid-attack — keyed on content, not mtime.
3. **Byte-identity**: the fleet's results log, with every verdict stamped
   by the source that produced it, is byte-identical to three serial
   single-source runs concatenated in canonical (sorted-label) source
   order — under any queue bound.

Run with ``python examples/multi_source_watch.py``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.shards import iter_shard_training_sessions
from repro.experiments.report import format_table
from repro.ingest import (
    FleetWatchService,
    INPROGRESS_SUFFIX,
    LibraryReloadWatcher,
    StreamingAttackService,
    validate_sources,
)


def publish_capture_atomically(source: Path, drop: Path) -> None:
    """Copy one pcap into a drop directory the way a cooperative writer would."""
    staged = drop / (source.name + INPROGRESS_SUFFIX)
    shutil.copy(source, staged)
    os.replace(staged, drop / source.name)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="white-mirror-fleet-"))
    print(f"working directory: {workdir}")

    print()
    print("=== 1. calibrate fingerprints; stage them for hot reload ===")
    dataset_dir = workdir / "dataset"
    IITMBandersnatchDataset.generate_streaming(
        dataset_dir, viewer_count=6, seed=23
    )
    attack = WhiteMirrorAttack()
    attack.train(iter_shard_training_sessions(dataset_dir))
    stage = workdir / "library.json"
    attack.library.save(stage)
    reload_watcher = LibraryReloadWatcher(stage)
    print(f"staged library fingerprint: {reload_watcher.fingerprint[:12]}")

    print()
    print("=== 2. three capture boxes flood their drop directories ===")
    pcaps = sorted((dataset_dir / "traces").glob("*.pcap"))
    boxes = []
    for index, name in enumerate(("box-a", "box-b", "box-c")):
        drop = workdir / name
        drop.mkdir()
        shutil.copy(dataset_dir / "metadata.json", drop / "metadata.json")
        for pcap in pcaps[index::3]:
            publish_capture_atomically(pcap, drop)
        boxes.append(drop)
    print(f"{len(pcaps)} captures across {len(boxes)} sources")

    print()
    print("=== 3. fleet drain: tiny queue bound, saturation is observable ===")
    log_path = workdir / "fleet.jsonl"
    service = StreamingAttackService(library=attack.library, log_path=log_path)
    fleet = FleetWatchService(
        service=service,
        sources=validate_sources([str(box) for box in boxes]),
        queue_high=2,
        queue_low=1,
        reload_watcher=reload_watcher,
        on_saturated=lambda source, depth: print(
            f"  queue saturated at {depth} (while offering {source}); "
            "overflow parked"
        ),
        on_reloaded=lambda path, fingerprint: print(
            f"  hot-reloaded library [{fingerprint[:12]}] between captures"
        ),
    )
    # Stage different bytes before the drain: the first batch boundary
    # swaps the library in, and the saturation callback narrates parking.
    stage.write_bytes(stage.read_bytes().replace(b": ", b" : ", 1))
    fleet.run(
        follow=False,
        on_verdict=lambda verdict, result: print(
            f"  verdict: [{verdict.source}] {verdict.capture} "
            f"{verdict.correct_questions}/{verdict.question_count} correct"
        ),
    )
    print(f"peak queue depth: {fleet.queue.peak_depth} "
          f"(bound {fleet.queue.high_watermark}), "
          f"saturation episodes: {fleet.queue.saturation_events}")
    print(format_table(
        service.aggregate_rows_by_source(), "Aggregate accuracy by source"
    ))

    print()
    print("=== 4. byte-identity vs serial single-source runs ===")
    chunks = []
    for box in sorted(boxes, key=str):
        segment = workdir / f"serial-{box.name}.jsonl"
        serial = StreamingAttackService(
            library=attack.library, log_path=segment
        )
        FleetWatchService(
            service=serial, sources=validate_sources([str(box)])
        ).run(follow=False)
        chunks.append(segment.read_bytes())
    identical = log_path.read_bytes() == b"".join(chunks)
    print(f"fleet log byte-identical to concatenated serial runs: {identical}")
    assert identical


if __name__ == "__main__":
    main()
