#!/usr/bin/env python3
"""Fleet coordination: one coordinator, two pull workers, identical bytes.

``repro serve`` turns the manual distributed recipe (generate shard subsets
on several machines, ship the pieces back, ``stitch``, ``merge-fingerprints``)
into a service: the coordinator owns a sharded plan and leases whole shards
over a small versioned JSON wire API to ``repro work`` pullers, which run the
leased job specs locally, verify their outputs by content fingerprint and
upload them back.  When the last unit lands, the coordinator stitches the
dataset root and folds the workers' accumulator states into one merged
library — byte-identical to a single machine running the plan serially.

This example walks that story in one process:

1. a single machine runs the plan serially — the gold bytes;
2. a coordinator starts serving the same plan on a loopback port;
3. two pull workers drain it concurrently, streaming their narration back
   to the coordinator over ``/v1/events``;
4. the fleet's published dataset root and merged library are compared
   against the serial run, byte for byte.

Run with ``python examples/fleet_coordinator.py``.  For a real fleet, run
``repro serve`` and ``repro work`` as separate processes (see
``repro --help``); the wire API, lease TTL reassignment and fingerprint
verification behave identically.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.coordinator import Coordinator, FleetPlan, PullWorker
from repro.dataset.format import snapshot_dataset_files
from repro.jobs import EventBus, JobRunner, Workspace
from repro.jobs.specs import GenerateJob, TrainJob

PLAN = FleetPlan(viewers=4, shards=2, seed=23, margin=8, cross_traffic=False)


def serial_run(base: Path) -> tuple[Path, Path]:
    """The whole plan on one machine: generate sharded, train sharded."""
    runner = JobRunner(EventBus(), Workspace(base))
    runner.run(
        GenerateJob(
            output="dataset",
            viewers=PLAN.viewers,
            shards=PLAN.shards,
            seed=PLAN.seed,
            cross_traffic=PLAN.cross_traffic,
            write_pcaps=PLAN.write_pcaps,
        )
    )
    runner.run(
        TrainJob(
            dataset="dataset", output="library.json", sharded=True, margin=PLAN.margin
        )
    )
    return base / "dataset", base / "library.json"


def fleet_run(base: Path) -> tuple[Path, Path]:
    """The same plan leased out to two pull workers over HTTP."""
    coordinator = Coordinator(
        PLAN,
        EventBus(),
        root=base / "dataset",
        library=base / "library.json",
        lease_ttl=300.0,
    )
    host, port = coordinator.start()
    url = f"http://{host}:{port}"
    print(f"coordinator serving {PLAN.shards} shard units at {url}")

    def pull(name: str) -> None:
        summary = PullWorker(
            url,
            EventBus(),
            worker_id=name,
            scratch=base / f"scratch-{name}",
            poll_interval=0.1,
        ).run()
        print(f"  {name} finished after {summary['units']} unit(s)")

    workers = [
        threading.Thread(target=pull, args=(f"worker-{index}",)) for index in range(2)
    ]
    for worker in workers:
        worker.start()
    summary = coordinator.serve_until_complete()
    for worker in workers:
        worker.join(timeout=60)
    print(f"plan complete: {summary['units']} units via {summary['workers']} worker(s)")
    return base / "dataset", base / "library.json"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="white-mirror-fleet-"))
    print(f"working directory: {workdir}")

    print()
    print("=== 1. the gold bytes: one machine runs the plan serially ===")
    serial_root, serial_library = serial_run(workdir / "serial")

    print()
    print("=== 2 + 3. coordinator serves the plan; two workers drain it ===")
    fleet_root, fleet_library = fleet_run(workdir / "fleet")

    print()
    print("=== 4. the fleet published exactly the serial bytes ===")
    datasets_match = snapshot_dataset_files(fleet_root) == snapshot_dataset_files(
        serial_root
    )
    libraries_match = serial_library.read_bytes() == fleet_library.read_bytes()
    print(f"dataset roots byte-identical:    {datasets_match}")
    print(f"merged libraries byte-identical: {libraries_match}")
    assert datasets_match and libraries_match


if __name__ == "__main__":
    main()
