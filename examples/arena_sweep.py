#!/usr/bin/env python3
"""Attack-vs-defense arena: sweep a grid, read the Pareto frontier.

The defense ablation (Section VI) scores a fixed defense suite against the
paper's interval attacker.  The arena generalises it into a declarative
sweep: *defenses × classifiers × conditions*, every component named by a
registry spec (``name[:key=value,...]``), every cell scored with an
*adaptive* attacker — the cell's classifier is retrained on the defended
training traffic before it attacks — and the report reduced to the Pareto
frontier of (overhead bytes, choice-accuracy leakage): which defense
configurations leak least for the bytes they cost?

This example walks the API end to end:

1. build the grid from sweep-grammar strings (typos fail here, by name);
2. run it serially, then again fanned out across worker processes, and
   byte-compare the two reports;
3. print the frontier rows — the efficient defense configurations.

Run with ``python examples/arena_sweep.py``.  The same sweep runs from the
command line (``repro arena OUT --defenses ... --classifiers ...``), can
resume after a kill (``--resume``), and can be leased cell-by-cell across
machines (``repro serve --arena`` + ``repro work``) — the published report
is byte-identical in every mode.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.arena import ArenaGrid, ArenaReport
from repro.jobs import ArenaJob, ConsoleRenderer, EventBus, JobRunner

DEFENSES = (
    "pad-to-multiple:block_bytes=64",
    "pad-to-constant:target_bytes=4096",
)
CLASSIFIERS = ("interval:margin=8", "knn:k=7")


def main() -> None:
    grid = ArenaGrid.from_axes(
        defenses=DEFENSES, classifiers=CLASSIFIERS, train_count=2, test_count=2
    )
    print(
        f"grid: {len(grid.defenses)} defense(s) (+ undefended) x "
        f"{len(grid.classifiers)} classifier(s) = {grid.cell_count} cells\n"
    )

    with tempfile.TemporaryDirectory() as base:
        serial = Path(base) / "serial"
        sharded = Path(base) / "sharded"
        runner = JobRunner(EventBus(ConsoleRenderer()))
        runner.run(
            ArenaJob(
                output=str(serial),
                defenses=DEFENSES,
                classifiers=CLASSIFIERS,
                train_count=2,
                test_count=2,
            )
        )
        # The same grid, cells scored in a process pool: identical bytes.
        JobRunner(EventBus()).run(
            ArenaJob(
                output=str(sharded),
                defenses=DEFENSES,
                classifiers=CLASSIFIERS,
                train_count=2,
                test_count=2,
                shard_workers=2,
            )
        )
        serial_bytes = (serial / "report.json").read_bytes()
        sharded_bytes = (sharded / "report.json").read_bytes()
        print(
            "\nserial vs --shard-workers 2 report: "
            + ("byte-identical" if serial_bytes == sharded_bytes else "DIFFER")
        )

        report = ArenaReport.load(serial / "report.json")
        print("\nPareto frontier (efficient defense configurations):")
        frontier = set(report.frontier)
        for cell in report.cells:
            if cell["cell"] not in frontier:
                continue
            metrics = cell["metrics"]
            print(
                f"  {cell['defense_name']:38s} vs {cell['classifier_name']:18s}"
                f" leak={metrics['choice_accuracy']:.2f}"
                f" overhead={metrics['overhead_bytes_per_session']:.0f}B"
            )


if __name__ == "__main__":
    main()
