#!/usr/bin/env python3
"""Generate an IITM-Bandersnatch-style dataset and persist it to disk.

The paper's dataset contains, for each of 100 viewers, the encrypted traffic
of one Bandersnatch viewing session plus the ground-truth choices and the
viewer's operational/behavioural attributes (Table I).  This example builds
the synthetic equivalent, prints the Table I summary and the dataset
statistics, and writes the artefacts (metadata.json + one pcap per viewer)
under ``./iitm-bandersnatch-synthetic``.

Run with ``python examples/generate_dataset.py [viewer_count]`` — the default
of 20 viewers keeps the run short; pass 100 for the paper-scale dataset.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.dataset.iitm import IITMBandersnatchDataset
from repro.experiments.report import format_table
from repro.streaming.session import SessionConfig


def main() -> None:
    viewer_count = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    output_dir = Path("iitm-bandersnatch-synthetic")

    print(f"generating {viewer_count} viewers (one simulated viewing session each)...")
    dataset = IITMBandersnatchDataset.generate(
        viewer_count=viewer_count,
        seed=2019,
        config=SessionConfig(cross_traffic_enabled=True),
        progress=lambda done, total: print(f"  collected {done}/{total} sessions", end="\r"),
    )
    print()

    print()
    print(format_table(dataset.table1(), "Table I — attribute space"))

    print()
    summary = dataset.summary()
    print("dataset summary")
    print("===============")
    print(f"  viewers:                 {summary.viewer_count}")
    print(f"  distinct conditions:     {summary.distinct_conditions}")
    print(f"  total choices recorded:  {summary.total_choices}")
    print(f"  non-default choices:     {summary.non_default_choices} "
          f"({100 * summary.non_default_fraction:.1f}%)")
    print(f"  total captured packets:  {summary.total_packets}")

    print()
    marginal_rows = [
        {"attribute": attribute, "value": value, "viewers": count}
        for attribute, counts in sorted(dataset.attribute_counts().items())
        for value, count in sorted(counts.items())
    ]
    print(format_table(marginal_rows, "Observed attribute marginals"))

    print()
    print(f"writing metadata and pcaps to {output_dir}/ ...")
    metadata_path = dataset.save(output_dir)
    print(f"wrote {metadata_path}")
    print("each viewer's capture is a standard pcap readable by wireshark/tcpdump.")


if __name__ == "__main__":
    main()
