#!/usr/bin/env python3
"""Generate an IITM-Bandersnatch-style dataset and persist it to disk.

The paper's dataset contains, for each of 100 viewers, the encrypted traffic
of one Bandersnatch viewing session plus the ground-truth choices and the
viewer's operational/behavioural attributes (Table I).  This example builds
the synthetic equivalent, prints the Table I summary and the dataset
statistics, and writes the artefacts (metadata.json + one pcap per viewer)
under ``./iitm-bandersnatch-synthetic``.

Run with ``python examples/generate_dataset.py [viewer_count]`` — the default
of 20 viewers keeps the run short; pass 100 for the paper-scale dataset.

Run with ``python examples/generate_dataset.py stitch-demo`` instead for the
distributed-generation walkthrough: two "machines" generate disjoint shard
subsets of one plan into two roots, the roots are merged (what rsync does
between real machines), ``stitch`` verifies and publishes the combined
manifest, and the per-machine fingerprint accumulator states are merged into
a calibration library identical to single-machine training.
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

from repro.dataset.iitm import IITMBandersnatchDataset
from repro.experiments.report import format_table
from repro.streaming.session import SessionConfig


def stitch_demo() -> None:
    """Split one generation plan across two roots, stitch, merge fingerprints.

    Everything below maps one-to-one onto the CLI::

        machine A: repro generate-dataset a/ --viewers 6 --shards 3 --only-shards 0-1
        machine B: repro generate-dataset b/ --viewers 6 --shards 3 --only-shards 2
        rsync a/ b/ under merged/, then: repro stitch merged/
        per machine: repro train ... --sharded --save-state state.json
        merge:       repro merge-fingerprints state-a.json state-b.json -o lib.json
    """
    from repro.core.fingerprint import FingerprintAccumulator, FingerprintLibrary
    from repro.core.pipeline import WhiteMirrorAttack
    from repro.dataset.shards import (
        ShardedDataset,
        generate_shard_subset,
        iter_shard_training_sessions,
        stitch_sharded_dataset,
    )

    base = Path("stitch-demo")
    if base.exists():
        shutil.rmtree(base)
    viewer_count, shard_count, seed = 6, 3, 2019
    config = SessionConfig(cross_traffic_enabled=False)
    plans = {"machine-a": (0, 1), "machine-b": (2,)}

    print(f"plan: {viewer_count} viewers across {shard_count} shards (seed {seed})")
    states = []
    for machine, selection in plans.items():
        root = base / machine
        print(f"{machine}: generating shards {','.join(map(str, selection))}...")
        summaries = generate_shard_subset(
            root,
            viewer_count=viewer_count,
            shard_count=shard_count,
            only_shards=selection,
            seed=seed,
            config=config,
        )
        # Each machine also folds its local shards into a fingerprint
        # accumulator and serialises the running state (`train --sharded
        # --save-state`): calibration travels as a few hundred bytes of
        # min/max/count state, not as pcaps.
        attack = WhiteMirrorAttack()
        accumulator = FingerprintAccumulator()
        attack.train_incremental(
            (
                iter_shard_training_sessions(root / summary.directory)
                for summary in summaries
            ),
            accumulator=accumulator,
        )
        state_path = base / f"{machine}-state.json"
        accumulator.save(state_path)
        states.append(state_path)
        print(f"{machine}: wrote {len(summaries)} shard(s) and {state_path}")

    merged_root = base / "merged"
    merged_root.mkdir()
    for machine in plans:
        for shard in sorted((base / machine).glob("shard-*")):
            shutil.copytree(shard, merged_root / shard.name)  # rsync stand-in
    dataset = stitch_sharded_dataset(merged_root)
    print(f"stitched {dataset.shard_count} shards -> {dataset.manifest_path}")

    merged = FingerprintAccumulator()
    for state_path in states:
        merged.merge(FingerprintAccumulator.load(state_path))
    merged_library = FingerprintLibrary()
    merged.finalize_into(merged_library, margin=8)

    single = WhiteMirrorAttack()
    single.train_incremental(
        ShardedDataset.load(merged_root).iter_shard_training_sessions()
    )
    identical = merged_library.as_dict() == single.library.as_dict()
    print(f"merged library == single-machine training: {identical}")


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1] == "stitch-demo":
        stitch_demo()
        return
    viewer_count = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    output_dir = Path("iitm-bandersnatch-synthetic")

    print(f"generating {viewer_count} viewers (one simulated viewing session each)...")
    dataset = IITMBandersnatchDataset.generate(
        viewer_count=viewer_count,
        seed=2019,
        config=SessionConfig(cross_traffic_enabled=True),
        progress=lambda done, total: print(f"  collected {done}/{total} sessions", end="\r"),
    )
    print()

    print()
    print(format_table(dataset.table1(), "Table I — attribute space"))

    print()
    summary = dataset.summary()
    print("dataset summary")
    print("===============")
    print(f"  viewers:                 {summary.viewer_count}")
    print(f"  distinct conditions:     {summary.distinct_conditions}")
    print(f"  total choices recorded:  {summary.total_choices}")
    print(f"  non-default choices:     {summary.non_default_choices} "
          f"({100 * summary.non_default_fraction:.1f}%)")
    print(f"  total captured packets:  {summary.total_packets}")

    print()
    marginal_rows = [
        {"attribute": attribute, "value": value, "viewers": count}
        for attribute, counts in sorted(dataset.attribute_counts().items())
        for value, count in sorted(counts.items())
    ]
    print(format_table(marginal_rows, "Observed attribute marginals"))

    print()
    print(f"writing metadata and pcaps to {output_dir}/ ...")
    metadata_path = dataset.save(output_dir)
    print(f"wrote {metadata_path}")
    print("each viewer's capture is a standard pcap readable by wireshark/tcpdump.")


if __name__ == "__main__":
    main()
