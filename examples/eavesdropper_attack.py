#!/usr/bin/env python3
"""The full eavesdropper scenario: attack victims from their pcap files alone.

This example mirrors how the attack would be mounted in practice:

1. a dataset of viewing sessions is generated and the victims' captures are
   written to disk as pcaps (only packets — no simulator ground truth);
2. the attacker calibrates record-length fingerprints using a few sessions
   they performed *themselves* (so the choices — the labels — are known);
3. every victim pcap is loaded back, the streaming connection is located, the
   client-side SSL record lengths are classified, the choice sequence is
   decoded and a behavioural profile is derived;
4. the recovered choices are scored against the ground truth the victims
   noted down, reproducing the paper's accuracy measurement.

Run with ``python examples/eavesdropper_attack.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.evaluation import (
    aggregate_choice_accuracy,
    aggregate_json_identification_accuracy,
)
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.experiments.report import format_table
from repro.net.capture import CapturedTrace
from repro.streaming.session import SessionConfig


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="white-mirror-"))
    print(f"working directory: {workdir}")

    print()
    print("=== 1. study: 12 viewers watch the interactive movie ===")
    dataset = IITMBandersnatchDataset.generate(
        viewer_count=12, seed=7, config=SessionConfig(cross_traffic_enabled=True)
    )
    attacker_points, victim_points = dataset.train_test_split(test_fraction=0.5)
    released = workdir / "captures"
    dataset.save(released)
    print(f"{len(attacker_points)} calibration viewers, {len(victim_points)} victims")
    print(f"victim captures written to {released / 'traces'}")

    print()
    print("=== 2. attacker calibration (sessions with known choices) ===")
    attack = WhiteMirrorAttack(graph=dataset.graph)
    attack.train([point.session for point in attacker_points])
    fingerprint_rows = [
        {
            "environment": key,
            "type1_band": f"{attack.library.get(key).type1_band.low}-{attack.library.get(key).type1_band.high}",
            "type2_band": f"{attack.library.get(key).type2_band.low}-{attack.library.get(key).type2_band.high}",
        }
        for key in sorted(attack.library.condition_keys)
    ]
    print(format_table(fingerprint_rows, "Learned record-length fingerprints"))

    print()
    print("=== 3. attacking the victims from their pcaps ===")
    rows = []
    evaluations = []
    for point in victim_points:
        pcap_path = released / "traces" / f"{point.viewer.viewer_id}.pcap"
        trace = CapturedTrace.from_pcap(
            pcap_path,
            client_ip=point.session.trace.client_ip,
            server_ip=point.session.trace.server_ip,
        )
        result = attack.attack_trace(
            trace, condition_key=point.viewer.condition.fingerprint_key
        )
        evaluation = attack.attack_session(point.session).evaluate_against(point.session)
        evaluations.append(evaluation)
        truth = point.ground_truth_choices
        recovered = result.recovered_pattern
        correct = sum(
            1
            for index, actual in enumerate(truth)
            if index < len(recovered) and recovered[index] == actual
        )
        rows.append(
            {
                "viewer": point.viewer.viewer_id,
                "environment": point.viewer.condition.fingerprint_key,
                "traffic": point.viewer.condition.traffic_condition,
                "recovered": f"{correct}/{len(truth)}",
                "exact_path": "yes" if correct == len(truth) == len(recovered) else "no",
            }
        )
    print(format_table(rows, "Per-victim choice recovery"))

    print()
    print("=== 4. accuracy (the paper's Section V measurement) ===")
    print(
        "JSON identification accuracy: "
        f"{aggregate_json_identification_accuracy(evaluations):.3f} (paper: 0.96 worst case)"
    )
    print(f"per-choice accuracy:          {aggregate_choice_accuracy(evaluations):.3f}")


if __name__ == "__main__":
    main()
