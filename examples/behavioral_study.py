#!/usr/bin/env python3
"""What the recovered choices reveal: building behavioural profiles at scale.

The paper's motivation is that interactive-movie choices "can potentially
reveal viewer information that ranges from benign (e.g., their food and music
preferences) to sensitive (e.g., their affinity to violence and political
inclination)".  This example quantifies that end to end:

1. generate a synthetic viewer population whose choices are correlated with
   their behavioural attributes (as the dataset generator models);
2. run the eavesdropping attack on every viewer's encrypted trace;
3. compare the recovered per-viewer behavioural profile against the profile
   computed from the ground-truth choices, and aggregate how often each
   sensitive trait is exposed.

Run with ``python examples/behavioral_study.py``.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.core.pipeline import WhiteMirrorAttack
from repro.core.profiling import profile_from_path
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.experiments.report import format_table
from repro.streaming.session import SessionConfig


def main() -> None:
    print("generating a 16-viewer study population and their encrypted traces...")
    dataset = IITMBandersnatchDataset.generate(
        viewer_count=16, seed=31, config=SessionConfig(cross_traffic_enabled=False)
    )
    attacker_points, victim_points = dataset.train_test_split(test_fraction=0.5)

    attack = WhiteMirrorAttack(graph=dataset.graph)
    attack.train([point.session for point in attacker_points])

    per_trait_matches: dict[str, int] = defaultdict(int)
    per_trait_total: dict[str, int] = defaultdict(int)
    leaked_labels: Counter[str] = Counter()

    for point in victim_points:
        result = attack.attack_session(point.session)
        if result.profile is None:
            continue
        truth_profile = profile_from_path(point.session.path).as_dict()
        recovered_profile = result.profile.as_dict()
        for trait, actual_label in truth_profile.items():
            per_trait_total[trait] += 1
            if recovered_profile.get(trait) == actual_label:
                per_trait_matches[trait] += 1
        for estimate in result.profile.sensitive_estimates():
            leaked_labels[f"{estimate.trait}={estimate.selected_label}"] += 1

    rows = [
        {
            "trait": trait,
            "viewers_profiled": per_trait_total[trait],
            "recovered_correctly": per_trait_matches[trait],
            "recovery_rate": round(per_trait_matches[trait] / per_trait_total[trait], 3),
        }
        for trait in sorted(per_trait_total)
    ]
    print()
    print(format_table(rows, "Per-trait recovery across the victim population"))

    print()
    print(format_table(
        [{"sensitive trait value": key, "viewers": count} for key, count in leaked_labels.most_common()],
        "Sensitive trait values exposed to the eavesdropper",
    ))

    print()
    overall_total = sum(per_trait_total.values())
    overall_match = sum(per_trait_matches.values())
    print(
        f"overall: {overall_match}/{overall_total} trait observations "
        f"({100 * overall_match / overall_total:.1f}%) recovered from encrypted traffic alone"
    )


if __name__ == "__main__":
    main()
