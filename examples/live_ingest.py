#!/usr/bin/env python3
"""The online attack: captures land in a drop directory and are attacked live.

The paper's eavesdropper is fundamentally *online* — verdicts should follow
captures as they are recorded, not wait for an archived corpus.  This example
walks the whole live-ingest story:

1. a small dataset of viewing sessions is generated and fingerprints are
   calibrated from the attacker's own labelled sessions;
2. a background "capture box" thread publishes the victims' pcaps into a
   drop directory one at a time, using the atomic ``.inprogress``-then-rename
   convention (:meth:`CapturedTrace.to_pcap_atomic` writes the same way);
3. a follow-mode :class:`StreamingAttackService` — what ``repro watch``
   runs — tails the directory, attacks each capture as it finishes landing,
   and appends one durable verdict line per capture to the results log;
4. the service is then re-run in ``--once`` mode to show the resume
   property: every capture is recognised by content fingerprint and skipped,
   and a batch ``repro attack --results-log`` over the same directory writes
   a byte-identical log.

Run with ``python examples/live_ingest.py``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.shards import iter_shard_training_sessions
from repro.experiments.report import format_table
from repro.ingest import INPROGRESS_SUFFIX, StreamingAttackService
from repro.streaming.session import SessionConfig


def publish_capture_atomically(source: Path, drop: Path) -> None:
    """Copy one pcap into the drop directory the way a cooperative writer would."""
    staged = drop / (source.name + INPROGRESS_SUFFIX)
    shutil.copy(source, staged)
    os.replace(staged, drop / source.name)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="white-mirror-ingest-"))
    print(f"working directory: {workdir}")

    print()
    print("=== 1. calibrate fingerprints from the attacker's own sessions ===")
    dataset_dir = workdir / "dataset"
    IITMBandersnatchDataset.generate_streaming(
        dataset_dir,
        viewer_count=4,
        seed=23,
        config=SessionConfig(cross_traffic_enabled=False),
    )
    attack = WhiteMirrorAttack()
    attack.train(iter_shard_training_sessions(dataset_dir))
    print(f"fingerprints for: {', '.join(sorted(attack.library.condition_keys))}")

    print()
    print("=== 2. a capture box starts dropping victim pcaps ===")
    drop = workdir / "drop"
    drop.mkdir()
    shutil.copy(dataset_dir / "metadata.json", drop / "metadata.json")
    captures = sorted((dataset_dir / "traces").glob("*.pcap"))

    def capture_box() -> None:
        for pcap in captures:
            time.sleep(0.3)  # a new viewing session ends every so often
            publish_capture_atomically(pcap, drop)

    publisher = threading.Thread(target=capture_box, daemon=True)
    publisher.start()

    print()
    print("=== 3. follow-mode ingest: verdicts as captures land ===")
    log_path = workdir / "results.jsonl"
    service = StreamingAttackService(library=attack.library, log_path=log_path)
    service.run(
        drop,
        follow=True,
        poll_interval=0.1,
        on_verdict=lambda verdict, result: print(
            f"  verdict: {verdict.capture} ({verdict.condition_key}) "
            f"{verdict.correct_questions}/{verdict.question_count} correct"
        ),
        # Stop once the publisher is done and every capture has a verdict.
        should_stop=lambda: not publisher.is_alive()
        and len(service.verdicts) == len(captures),
    )
    print(format_table(service.aggregate_rows(), "Aggregate accuracy (live run)"))

    print()
    print("=== 4. restart + batch path: resume skips, logs byte-identical ===")
    resumed = StreamingAttackService(library=attack.library, log_path=log_path)
    skips: list[str] = []
    resumed.run(drop, follow=False, on_skip=lambda path, reason: skips.append(path.name))
    print(f"restart skipped {len(skips)} already-attacked captures")

    batch_log = workdir / "batch.jsonl"
    batch = StreamingAttackService(library=attack.library, log_path=batch_log)
    batch.process(sorted(drop.glob("*.pcap")))
    identical = log_path.read_bytes() == batch_log.read_bytes()
    print(f"batch attack log byte-identical to the live log: {identical}")
    assert identical


if __name__ == "__main__":
    main()
