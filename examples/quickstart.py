#!/usr/bin/env python3
"""Quickstart: simulate an interactive viewing session and recover its choices.

This walks the full White Mirror pipeline in ~30 lines of API calls:

1. build the Bandersnatch-like interactive script;
2. simulate two labelled "attacker calibration" sessions and one victim
   session under the (Desktop, Firefox, Ethernet, Ubuntu) condition;
3. train the attack's record-length fingerprints on the calibration sessions;
4. attack the victim's encrypted trace and compare the recovered choices with
   what the victim actually picked.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.client.profiles import figure2_conditions
from repro.client.viewer import ViewerBehavior
from repro.core.pipeline import WhiteMirrorAttack
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.streaming.session import simulate_session


def main() -> None:
    # The interactive title: a Bandersnatch-like script with ten binary
    # choice points (shorter segments keep the example fast).
    graph = build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    ubuntu, _windows = figure2_conditions()
    viewer = ViewerBehavior(
        age_group="20-25", gender="female", political_alignment="liberal", state_of_mind="happy"
    )

    print("=== 1. attacker calibration: two sessions with known choices ===")
    calibration = [
        simulate_session(graph, ubuntu, viewer, seed=seed, session_id=f"calibration-{seed}")
        for seed in (101, 102)
    ]
    attack = WhiteMirrorAttack(graph=graph)
    attack.train(calibration)
    fingerprint = attack.library.get(ubuntu.fingerprint_key)
    print(f"learned type-1 band: {fingerprint.type1_band.low}-{fingerprint.type1_band.high} bytes")
    print(f"learned type-2 band: {fingerprint.type2_band.low}-{fingerprint.type2_band.high} bytes")

    print()
    print("=== 2. the victim watches the movie ===")
    victim = simulate_session(graph, ubuntu, viewer, seed=999, session_id="victim")
    print(f"captured {victim.trace.packet_count} packets "
          f"({victim.trace.total_bytes() / 1e6:.1f} MB over {victim.trace.duration_seconds:.0f} s)")
    print(f"ground truth (default branch taken?): {victim.ground_truth_pattern}")

    print()
    print("=== 3. passive eavesdropper recovers the choices ===")
    result = attack.attack_session(victim)
    print(f"recovered pattern:                    {result.recovered_pattern}")
    correct = sum(
        1
        for index, actual in enumerate(victim.ground_truth_pattern)
        if index < len(result.recovered_pattern) and result.recovered_pattern[index] == actual
    )
    print(f"choices recovered correctly: {correct}/{victim.path.choice_count}")

    print()
    print("=== 4. what those choices reveal ===")
    assert result.profile is not None
    for trait, label in result.profile.as_dict().items():
        print(f"  {trait:<18s} -> {label}")


if __name__ == "__main__":
    main()
