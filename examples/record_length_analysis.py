#!/usr/bin/env python3
"""Reproduce Figure 2: the SSL record-length side-channel, condition by condition.

The heart of the paper is the observation that the client's type-1 and type-2
state reports occupy narrow, stable SSL-record-length bands that never collide
with other client traffic — and that the bands shift with the client
environment (Ubuntu vs Windows) while staying equally separable.

This example simulates sessions under both Figure 2 conditions, prints the
per-bin percentage tables (the numbers behind the paper's bar charts) using
the paper's exact bin edges, and then prints a simple ASCII rendering of each
panel.

Run with ``python examples/record_length_analysis.py``.
"""

from __future__ import annotations

from repro.experiments.conditions import figure2_condition_names
from repro.experiments.figure2 import reproduce_figure2
from repro.experiments.report import format_table


def _ascii_bar(percentage: float, width: int = 30) -> str:
    filled = int(round(percentage / 100.0 * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    print("simulating viewing sessions under both Figure 2 conditions...")
    result = reproduce_figure2(sessions_per_condition=4, seed=2)
    names = figure2_condition_names()

    for distribution in result.distributions:
        title = names[distribution.condition.fingerprint_key]
        print()
        print(format_table(distribution.rows(), f"Figure 2 — {title}"))
        print()
        for category in ("type1", "type2", "other"):
            print(f"  {category:>6s} |", end="")
            for row in distribution.rows():
                percentage = float(row[category])
                marker = "#" if percentage >= 50 else ("+" if percentage > 0 else ".")
                print(f" {marker:^11s}", end="")
            print()
        print("         |", end="")
        for row in distribution.rows():
            print(f" {row['bin']:^11s}", end="")
        print()
        print(
            "  separation holds:"
            f" {'YES' if distribution.separation_holds() else 'NO'}"
            f" ({distribution.records_observed} client records observed)"
        )

    print()
    print(
        "Both panels keep the three categories in disjoint length ranges, so a "
        "passive observer can label every state report from its record length alone."
    )


if __name__ == "__main__":
    main()
