#!/usr/bin/env python3
"""Evaluate the countermeasures the paper sketches (and their residual leakage).

Section VI of the paper suggests splitting or compressing the state-report
JSON so its record length stops being distinctive, and warns that timing side
channels may survive.  This example:

1. simulates training and victim sessions under one condition;
2. sweeps the defence suite (padding to a multiple, padding to a constant,
   splitting, compression) against an *adaptive* attacker that re-trains on
   defended traffic;
3. prints, for every defence, the attack's residual accuracy, the byte
   overhead, and what a record-length-blind timing attacker can still learn.

Run with ``python examples/countermeasure_study.py``.
"""

from __future__ import annotations

from repro.experiments.defense_ablation import reproduce_defense_ablation
from repro.experiments.report import format_table


def main() -> None:
    print("running the defence sweep (adaptive attacker, 4 training / 4 victim sessions)...")
    result = reproduce_defense_ablation(train_count=4, test_count=4, seed=5)

    print()
    print(format_table(result.rows(), f"Countermeasures under {result.condition_key}"))

    print()
    best = result.best_defense
    print(f"undefended choice accuracy : {result.undefended_accuracy:.2f}")
    print(f"strongest defence          : {best.defense_name}")
    print(f"  residual choice accuracy : {best.choice_accuracy:.2f}")
    print(f"  bytes added per session  : {best.mean_overhead_bytes_per_session:.0f}")
    print(f"  timing question recall   : {best.timing_question_recall:.2f}")

    print()
    if result.timing_channel_survives:
        print(
            "Even under the strongest record-length defence, the timing-only "
            "attacker still locates most choice questions from request/response "
            "behaviour — exactly the residual channel the paper warns about."
        )
    else:
        print("The timing channel did not survive in this configuration.")


if __name__ == "__main__":
    main()
