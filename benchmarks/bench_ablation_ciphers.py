"""Ablation E benchmark: robustness to the negotiated cipher suite.

Not a paper artefact: the paper's captures used the AEAD suites Netflix
deploys.  This ablation quantifies what happens when the victim's connection
negotiates a different suite — with and without the attacker re-training —
because the record length observed on the wire includes the suite's
ciphertext expansion.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_ciphers import reproduce_cipher_ablation
from repro.experiments.report import format_table


def test_cipher_suite_robustness(benchmark):
    result = run_once(
        benchmark, reproduce_cipher_ablation, sessions_per_suite=3, training_sessions=3, seed=9
    )

    print()
    print(
        format_table(
            result.rows(),
            "Ablation E — JSON identification accuracy per victim cipher suite",
        )
    )

    # Shape: AEAD suites differ by a handful of overhead bytes, so the
    # GCM-trained fingerprint still works; the CBC suite's 16-byte padding
    # shifts lengths out of the learned bands; and re-training per suite
    # restores the attack everywhere (the two JSON payload sizes are ~800
    # bytes apart, far more than any suite's expansion difference).
    assert result.aead_suites_survive_without_retraining
    assert result.cbc_breaks_without_retraining
    assert result.adaptive_attacker_always_wins
