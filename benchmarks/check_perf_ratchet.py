#!/usr/bin/env python
"""Perf-ratchet gate: compare measured hot-path metrics against baselines.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py \
        benchmarks/bench_ingest_latency.py -q --benchmark-json=BENCH_results.json
    python benchmarks/check_perf_ratchet.py BENCH_results.json

The benchmarks publish their metrics through ``benchmark.extra_info``; this
script collects them from the pytest-benchmark JSON and enforces the floors
and ceilings checked in at ``benchmarks/BENCH_baselines.json``.  Metrics are
primarily *ratios* (vectorized vs scalar on the same machine, in the same
run), so the gate is stable across machine speeds; the absolute floors and
ceilings are deliberately loose backstops against pathological regressions.

Re-baselining after an intentional performance change is one line::

    python benchmarks/check_perf_ratchet.py --update BENCH_results.json

which rewrites the baselines from the measured values divided (floors) or
multiplied (ceilings) by each metric's tolerance — never relaxing a metric
past its ``hard_floor``/``hard_ceiling``, the contractual bounds that a
re-baseline must not soften.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINES_PATH = Path(__file__).parent / "BENCH_baselines.json"


def collect_metrics(results_path: Path) -> dict[str, float]:
    """All extra_info numbers from one pytest-benchmark JSON report."""
    report = json.loads(results_path.read_text())
    metrics: dict[str, float] = {}
    for entry in report.get("benchmarks", []):
        for key, value in entry.get("extra_info", {}).items():
            if isinstance(value, (int, float)):
                metrics[key] = float(value)
    return metrics


def check(baselines: dict, metrics: dict[str, float]) -> list[str]:
    """Human-readable failure list (empty when the ratchet holds)."""
    failures = []
    for name, bounds in baselines["metrics"].items():
        if name not in metrics:
            failures.append(f"{name}: missing from the benchmark report")
            continue
        value = metrics[name]
        if "floor" in bounds and value < bounds["floor"]:
            failures.append(
                f"{name}: {value:g} fell below the baseline floor "
                f"{bounds['floor']:g}"
            )
        if "ceiling" in bounds and value > bounds["ceiling"]:
            failures.append(
                f"{name}: {value:g} exceeded the baseline ceiling "
                f"{bounds['ceiling']:g}"
            )
    return failures


def update(baselines: dict, metrics: dict[str, float]) -> dict:
    """Recompute each bound from the measured value and its tolerance."""
    for name, bounds in baselines["metrics"].items():
        if name not in metrics:
            raise SystemExit(f"cannot re-baseline: {name} missing from report")
        value = metrics[name]
        tolerance = bounds.get("tolerance", baselines.get("tolerance", 1.5))
        if "floor" in bounds:
            floor = value / tolerance
            if "hard_floor" in bounds:
                floor = max(floor, bounds["hard_floor"])
            bounds["floor"] = round(floor, 4)
        if "ceiling" in bounds:
            ceiling = value * tolerance
            if "hard_ceiling" in bounds:
                ceiling = min(ceiling, bounds["hard_ceiling"])
            bounds["ceiling"] = round(ceiling, 6)
    return baselines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON report")
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BENCH_baselines.json from this report instead of gating",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=BASELINES_PATH,
        help="baselines file (default: benchmarks/BENCH_baselines.json)",
    )
    arguments = parser.parse_args(argv)

    baselines = json.loads(arguments.baselines.read_text())
    metrics = collect_metrics(arguments.results)

    if arguments.update:
        rewritten = update(baselines, metrics)
        arguments.baselines.write_text(
            json.dumps(rewritten, indent=2, sort_keys=True) + "\n"
        )
        print(f"re-baselined {len(rewritten['metrics'])} metric(s) "
              f"into {arguments.baselines}")
        return 0

    for name in sorted(baselines["metrics"]):
        bounds = baselines["metrics"][name]
        shown = metrics.get(name)
        gate = " / ".join(
            f"{kind} {bounds[kind]:g}"
            for kind in ("floor", "ceiling")
            if kind in bounds
        )
        print(f"  {name}: {shown if shown is None else f'{shown:g}'} ({gate})")
    failures = check(baselines, metrics)
    if failures:
        print("\nperf ratchet FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "\nIf this regression is intentional, re-baseline with:\n"
            f"  python benchmarks/check_perf_ratchet.py --update {arguments.results}",
            file=sys.stderr,
        )
        return 1
    print("perf ratchet OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
