"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or one of the
ablations DESIGN.md calls out) and prints the reproduced rows, so that
``pytest benchmarks/ --benchmark-only`` leaves a readable record of the
reproduction next to the timing numbers.

The experiment functions are deterministic but expensive (tens of seconds for
the full headline run), so each benchmark executes its workload exactly once
via ``benchmark.pedantic(..., rounds=1, iterations=1)``: the timing is the
wall-clock cost of reproducing the artefact, not a micro-benchmark statistic.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def study_graph():
    """The short-segment Bandersnatch-like script shared by all benchmarks."""
    from repro.narrative.bandersnatch import build_bandersnatch_script

    return build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
