"""Ablation C benchmark: band rule vs. generic classifiers.

DESIGN.md design decision 1.  The paper classifies the state reports with a
hand-built record-length band rule; this ablation checks whether the
side-channel is equally learnable by generic estimators (k-NN, naive Bayes,
decision tree, logistic regression) fed nothing but raw record lengths.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_classifiers import reproduce_classifier_ablation
from repro.experiments.report import format_table


def test_classifier_ablation(benchmark):
    result = run_once(benchmark, reproduce_classifier_ablation, train_count=4, test_count=6, seed=6)

    print()
    print(
        format_table(
            result.rows(),
            f"Ablation C — record-type classifiers ({result.condition_key}, "
            f"{result.test_sessions} victim sessions)",
        )
    )

    # Shape: the paper's band rule is essentially perfect, and the
    # side-channel is strong enough that every estimator able to express an
    # interval (k-NN, naive Bayes, tree) also clears 90 % — the hand-built
    # bins are convenient, not essential.  A *linear* model over the single
    # raw length cannot isolate a middle interval and collapses, which
    # confirms the decision structure really is the band shape the paper
    # describes.
    assert result.band_rule_score.json_identification_accuracy >= 0.99
    assert result.band_rule_score.choice_accuracy >= 0.95
    assert result.nonlinear_strategies_work
    assert result.linear_model_fails
