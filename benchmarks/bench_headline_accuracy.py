"""Headline (Section V) reproduction benchmark: ~96 % worst-case accuracy.

Paper artefact: the Section V result — "encrypted traffic captured during 10
different viewing sessions ... identify the two types of JSON files with 96%
accuracy and hence the choices made by the viewers", where 96 % is the worst
case across operational conditions.

The benchmark trains the attack on a few labelled sessions per environment,
evaluates 10 held-out sessions under each condition of the evaluation spread,
and prints per-condition JSON-identification accuracy (the paper's metric),
the stricter per-choice accuracy, and the worst case.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.headline import PAPER_WORST_CASE_ACCURACY, reproduce_headline
from repro.experiments.report import format_table


def test_headline_worst_case_accuracy(benchmark):
    result = run_once(
        benchmark,
        reproduce_headline,
        sessions_per_condition=10,
        training_sessions_per_condition=2,
        seed=3,
    )

    print()
    print(format_table(result.rows(), "Section V — choice recovery across operational conditions"))
    print()
    print(
        f"worst case (reproduced): {result.worst_case_accuracy:.4f}  "
        f"worst case (paper): {PAPER_WORST_CASE_ACCURACY:.2f}  "
        f"gap: {result.worst_case_gap:.4f}"
    )

    # Shape checks: the best conditions are essentially perfect, the worst
    # case sits near the paper's 96 %, and the aggregate stays high.
    best = max(entry.json_identification_accuracy for entry in result.per_condition)
    assert best >= 0.99
    assert 0.90 <= result.worst_case_accuracy <= 1.0
    assert result.worst_case_gap <= 0.06
    assert result.aggregate_json_identification_accuracy >= 0.96
    assert result.aggregate_choice_accuracy >= 0.85
