"""Live capture-ingest benchmark: arrival→verdict latency and throughput.

The online attack's figure of merit is not corpus wall-clock but how long a
freshly landed capture waits before its verdict is durably logged.  This
benchmark replays a small generated dataset's pcaps into a drop directory,
drains it through :class:`~repro.ingest.service.StreamingAttackService`
(exactly what ``repro watch --once`` runs), and records the per-capture
arrival→verdict latency plus end-to-end throughput, serially and with an
engine worker pool — the ``--workers`` knob's payoff on the ingest path.

Capture attacking is pure parsing + classification (no simulation), so
per-capture latency is tens of milliseconds and the pool's win shows up in
throughput once the pool's spawn cost is amortised over the batch.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.shards import iter_shard_training_sessions
from repro.ingest.service import StreamingAttackService
from repro.streaming.session import SessionConfig

from conftest import run_once

SEED = 67
VIEWERS = 6
WORKERS = 2
CONFIG = SessionConfig(cross_traffic_enabled=False)


def _build_corpus(root: Path):
    """One small dataset plus fingerprints covering every capture."""
    dataset_dir = root / "dataset"
    IITMBandersnatchDataset.generate_streaming(
        dataset_dir, viewer_count=VIEWERS, seed=SEED, config=CONFIG
    )
    attack = WhiteMirrorAttack()
    attack.train(iter_shard_training_sessions(dataset_dir))
    return dataset_dir, attack.library


def _replay(dataset_dir: Path, drop: Path) -> list[Path]:
    drop.mkdir(parents=True, exist_ok=True)
    shutil.copy(dataset_dir / "metadata.json", drop / "metadata.json")
    return [
        Path(shutil.copy(pcap, drop / pcap.name))
        for pcap in sorted((dataset_dir / "traces").glob("*.pcap"))
    ]


def _drain(library, log_path: Path, captures: list[Path], workers: int | None):
    """Drain one drop directory; returns (per-capture latencies, elapsed)."""
    service = StreamingAttackService(
        library=library, log_path=log_path, workers=workers
    )
    arrival = time.perf_counter()
    latencies: list[float] = []
    service.process(
        captures,
        on_verdict=lambda verdict, result: latencies.append(
            time.perf_counter() - arrival
        ),
    )
    elapsed = time.perf_counter() - arrival
    assert len(latencies) == len(captures)
    return latencies, elapsed


def test_ingest_arrival_to_verdict_latency(benchmark, tmp_path):
    dataset_dir, library = _build_corpus(tmp_path)
    serial_drop = _replay(dataset_dir, tmp_path / "drop-serial")
    parallel_drop = _replay(dataset_dir, tmp_path / "drop-parallel")

    latencies, serial_seconds = run_once(
        benchmark,
        _drain,
        library,
        tmp_path / "serial.jsonl",
        serial_drop,
        None,
    )
    parallel_latencies, parallel_seconds = _drain(
        library, tmp_path / "parallel.jsonl", parallel_drop, WORKERS
    )

    # The two paths must agree on every verdict: same captures, same bytes.
    assert (tmp_path / "serial.jsonl").read_bytes() == (
        tmp_path / "parallel.jsonl"
    ).read_bytes()

    first_verdict = latencies[0]
    mean_latency = sum(latencies) / len(latencies)
    throughput = len(serial_drop) / serial_seconds
    parallel_throughput = len(parallel_drop) / parallel_seconds
    benchmark.extra_info.update(
        {
            "ingest_first_verdict_s": first_verdict,
            "ingest_mean_latency_s": mean_latency,
            "ingest_captures_per_s": throughput,
        }
    )
    print(
        f"\ningest of {len(serial_drop)} captures (arrival -> durable verdict):\n"
        f"  serial:     first verdict {first_verdict * 1e3:.1f}ms, "
        f"mean latency {mean_latency * 1e3:.1f}ms, "
        f"{throughput:.1f} captures/s\n"
        f"  workers={WORKERS}:  mean latency "
        f"{sum(parallel_latencies) / len(parallel_latencies) * 1e3:.1f}ms, "
        f"{parallel_throughput:.1f} captures/s"
    )

    # Sanity floor, not a perf gate: every capture got a verdict and the
    # first one did not wait for the batch (streaming, not collect-then-log).
    assert first_verdict <= serial_seconds
    assert all(earlier <= later for earlier, later in zip(latencies, latencies[1:]))
