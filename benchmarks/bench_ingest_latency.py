"""Live capture-ingest benchmark: arrival→verdict latency and throughput.

The online attack's figure of merit is not corpus wall-clock but how long a
freshly landed capture waits before its verdict is durably logged.  This
benchmark replays a small generated dataset's pcaps into a drop directory,
drains it through :class:`~repro.ingest.service.StreamingAttackService`
(exactly what ``repro watch --once`` runs), and records the per-capture
arrival→verdict latency plus end-to-end throughput, serially and with an
engine worker pool — the ``--workers`` knob's payoff on the ingest path.

Capture attacking is pure parsing + classification (no simulation), so
per-capture latency is tens of milliseconds and the pool's win shows up in
throughput once the pool's spawn cost is amortised over the batch.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.shards import iter_shard_training_sessions
from repro.ingest.fleet import FleetWatchService, validate_sources
from repro.ingest.service import StreamingAttackService
from repro.streaming.session import SessionConfig

from conftest import run_once

SEED = 67
VIEWERS = 6
WORKERS = 2
CONFIG = SessionConfig(cross_traffic_enabled=False)
FLEET_SOURCES = 3
#: Deliberately smaller than the corpus so the fleet benchmark exercises
#: the saturation/parking path, not just the happy path.
FLEET_QUEUE_HIGH = 4
FLEET_QUEUE_LOW = 2


def _build_corpus(root: Path):
    """One small dataset plus fingerprints covering every capture."""
    dataset_dir = root / "dataset"
    IITMBandersnatchDataset.generate_streaming(
        dataset_dir, viewer_count=VIEWERS, seed=SEED, config=CONFIG
    )
    attack = WhiteMirrorAttack()
    attack.train(iter_shard_training_sessions(dataset_dir))
    return dataset_dir, attack.library


def _replay(dataset_dir: Path, drop: Path) -> list[Path]:
    drop.mkdir(parents=True, exist_ok=True)
    shutil.copy(dataset_dir / "metadata.json", drop / "metadata.json")
    return [
        Path(shutil.copy(pcap, drop / pcap.name))
        for pcap in sorted((dataset_dir / "traces").glob("*.pcap"))
    ]


def _drain(library, log_path: Path, captures: list[Path], workers: int | None):
    """Drain one drop directory; returns (per-capture latencies, elapsed)."""
    service = StreamingAttackService(
        library=library, log_path=log_path, workers=workers
    )
    arrival = time.perf_counter()
    latencies: list[float] = []
    service.process(
        captures,
        on_verdict=lambda verdict, result: latencies.append(
            time.perf_counter() - arrival
        ),
    )
    elapsed = time.perf_counter() - arrival
    assert len(latencies) == len(captures)
    return latencies, elapsed


def test_ingest_arrival_to_verdict_latency(benchmark, tmp_path):
    dataset_dir, library = _build_corpus(tmp_path)
    serial_drop = _replay(dataset_dir, tmp_path / "drop-serial")
    parallel_drop = _replay(dataset_dir, tmp_path / "drop-parallel")

    latencies, serial_seconds = run_once(
        benchmark,
        _drain,
        library,
        tmp_path / "serial.jsonl",
        serial_drop,
        None,
    )
    parallel_latencies, parallel_seconds = _drain(
        library, tmp_path / "parallel.jsonl", parallel_drop, WORKERS
    )

    # The two paths must agree on every verdict: same captures, same bytes.
    assert (tmp_path / "serial.jsonl").read_bytes() == (
        tmp_path / "parallel.jsonl"
    ).read_bytes()

    first_verdict = latencies[0]
    mean_latency = sum(latencies) / len(latencies)
    throughput = len(serial_drop) / serial_seconds
    parallel_throughput = len(parallel_drop) / parallel_seconds
    benchmark.extra_info.update(
        {
            "ingest_first_verdict_s": first_verdict,
            "ingest_mean_latency_s": mean_latency,
            "ingest_captures_per_s": throughput,
        }
    )
    print(
        f"\ningest of {len(serial_drop)} captures (arrival -> durable verdict):\n"
        f"  serial:     first verdict {first_verdict * 1e3:.1f}ms, "
        f"mean latency {mean_latency * 1e3:.1f}ms, "
        f"{throughput:.1f} captures/s\n"
        f"  workers={WORKERS}:  mean latency "
        f"{sum(parallel_latencies) / len(parallel_latencies) * 1e3:.1f}ms, "
        f"{parallel_throughput:.1f} captures/s"
    )

    # Sanity floor, not a perf gate: every capture got a verdict and the
    # first one did not wait for the batch (streaming, not collect-then-log).
    assert first_verdict <= serial_seconds
    assert all(earlier <= later for earlier, later in zip(latencies, latencies[1:]))


def _build_fleet(dataset_dir: Path, root: Path) -> list[Path]:
    """Deal the corpus round-robin into FLEET_SOURCES drop directories."""
    pcaps = sorted((dataset_dir / "traces").glob("*.pcap"))
    sources = []
    for index in range(FLEET_SOURCES):
        drop = root / f"box-{index}"
        drop.mkdir(parents=True)
        shutil.copy(dataset_dir / "metadata.json", drop / "metadata.json")
        for pcap in pcaps[index::FLEET_SOURCES]:
            shutil.copy(pcap, drop / pcap.name)
        sources.append(drop)
    return sources


def _drain_fleet(library, log_path: Path, sources: list[Path]):
    """One multi-source --once drain through the bounded queue."""
    service = StreamingAttackService(library=library, log_path=log_path)
    fleet = FleetWatchService(
        service=service,
        sources=validate_sources([str(source) for source in sources]),
        queue_high=FLEET_QUEUE_HIGH,
        queue_low=FLEET_QUEUE_LOW,
    )
    started = time.perf_counter()
    verdicts = fleet.run(follow=False)
    elapsed = time.perf_counter() - started
    return len(verdicts), fleet.queue.peak_depth, elapsed


def test_fleet_multi_source_throughput(benchmark, tmp_path):
    dataset_dir, library = _build_corpus(tmp_path)
    sources = _build_fleet(dataset_dir, tmp_path / "fleet")

    count, peak_depth, elapsed = run_once(
        benchmark, _drain_fleet, library, tmp_path / "fleet.jsonl", sources
    )
    assert count == VIEWERS

    # The hard wall holds in the benchmark too: the fleet log matches the
    # serial single-source segments concatenated in canonical source order.
    chunks = []
    for source in sorted(sources, key=str):
        segment = tmp_path / f"segment-{source.name}.jsonl"
        _drain_fleet(library, segment, [source])
        chunks.append(segment.read_bytes())
    assert (tmp_path / "fleet.jsonl").read_bytes() == b"".join(chunks)

    throughput = count / elapsed
    benchmark.extra_info.update(
        {
            "fleet_captures_per_s": throughput,
            "fleet_peak_queue_depth": float(peak_depth),
        }
    )
    print(
        f"\nfleet drain of {count} captures across {FLEET_SOURCES} sources "
        f"(queue bound {FLEET_QUEUE_HIGH}/{FLEET_QUEUE_LOW}):\n"
        f"  {throughput:.1f} captures/s, peak queue depth {peak_depth}"
    )

    # Bounded-memory invariant, enforced here and ratcheted in CI.
    assert peak_depth <= FLEET_QUEUE_HIGH
