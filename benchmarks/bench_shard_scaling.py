"""Shard scaling benchmark: streaming generation in O(shard) memory.

Generates the same population through the in-memory path
(:meth:`IITMBandersnatchDataset.generate`, which materialises every session)
and through sharded streaming generation
(:func:`repro.dataset.shards.generate_sharded_dataset`, which persists each
data point as the engine completes it), measuring the peak Python-heap
allocation of each with ``tracemalloc``.

Two properties are asserted on every run:

* correctness — the sharded run writes byte-identical per-viewer pcaps and
  an identical merged summary to the in-memory dataset saved directly;
* memory — doubling the population roughly doubles the in-memory path's
  peak, while the streaming path's peak stays bounded by the (fixed) shard
  size rather than the population.
"""

from __future__ import annotations

import tracemalloc

from repro.dataset.iitm import IITMBandersnatchDataset
from repro.dataset.shards import generate_sharded_dataset
from repro.streaming.session import SessionConfig

from conftest import run_once

SEED = 33
SHARD_SIZE = 2
SMALL_POPULATION = 4
LARGE_POPULATION = 8
CONFIG = SessionConfig(cross_traffic_enabled=False)


def _peak_bytes(function, *args, **kwargs) -> tuple[int, object]:
    """Run ``function`` and return (peak traced allocation, result)."""
    tracemalloc.start()
    try:
        result = function(*args, **kwargs)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def _generate_in_memory(viewer_count: int) -> IITMBandersnatchDataset:
    return IITMBandersnatchDataset.generate(
        viewer_count=viewer_count, seed=SEED, config=CONFIG
    )


def _generate_sharded(directory, viewer_count: int):
    return generate_sharded_dataset(
        directory,
        viewer_count=viewer_count,
        shard_count=viewer_count // SHARD_SIZE,
        seed=SEED,
        config=CONFIG,
    )


def test_streaming_peak_memory_bounded_by_shard(benchmark, tmp_path):
    in_memory_small_peak, _ = _peak_bytes(_generate_in_memory, SMALL_POPULATION)
    in_memory_large_peak, reference = _peak_bytes(_generate_in_memory, LARGE_POPULATION)
    streaming_small_peak, _ = _peak_bytes(
        _generate_sharded, tmp_path / "small", SMALL_POPULATION
    )
    streaming_large_peak, sharded = run_once(
        benchmark, _peak_bytes, _generate_sharded, tmp_path / "large", LARGE_POPULATION
    )

    # Correctness: sharded + streaming generation reproduces the in-memory
    # dataset byte for byte.
    reference_dir = tmp_path / "reference"
    reference.save(reference_dir)
    assert sharded.summary() == reference.summary()
    shard_pcaps = {
        pcap.name: pcap
        for shard_dir in sharded.shard_directories()
        for pcap in (shard_dir / "traces").glob("*.pcap")
    }
    reference_pcaps = sorted((reference_dir / "traces").glob("*.pcap"))
    assert len(reference_pcaps) == LARGE_POPULATION == len(shard_pcaps)
    for pcap in reference_pcaps:
        assert pcap.read_bytes() == shard_pcaps[pcap.name].read_bytes()

    in_memory_growth = in_memory_large_peak / in_memory_small_peak
    streaming_growth = streaming_large_peak / streaming_small_peak
    # Feed the memory-scaling ratios into the perf-ratchet: CI gates them
    # against benchmarks/BENCH_baselines.json alongside the hot-path and
    # ingest-latency metrics.
    benchmark.extra_info.update(
        {
            "shard_streaming_growth": streaming_growth,
            "shard_inmemory_growth": in_memory_growth,
            "shard_peak_ratio": in_memory_large_peak / streaming_large_peak,
        }
    )
    print(
        f"\npeak heap, {SMALL_POPULATION} -> {LARGE_POPULATION} viewers "
        f"(shard size {SHARD_SIZE}):\n"
        f"  in-memory: {in_memory_small_peak / 1e6:.1f} MB -> "
        f"{in_memory_large_peak / 1e6:.1f} MB ({in_memory_growth:.2f}x)\n"
        f"  streaming: {streaming_small_peak / 1e6:.1f} MB -> "
        f"{streaming_large_peak / 1e6:.1f} MB ({streaming_growth:.2f}x)"
    )

    # Memory: the streaming path's peak is set by the shard, not the
    # population — doubling the population must not double it — and it
    # undercuts materialising the whole population.
    assert streaming_large_peak < in_memory_large_peak
    assert streaming_growth < 1.5
    assert streaming_growth < in_memory_growth
