"""Engineering benchmarks: simulator, capture and attack throughput.

These are not paper artefacts; they quantify the cost of the reproduction
pipeline itself (how long one simulated viewing session takes, how fast the
dataset generator is, how many records per second the attack classifies, and
the pcap round-trip cost), so regressions in the substrate are visible.
"""

from __future__ import annotations

import pytest

from repro.client.profiles import figure2_conditions
from repro.client.viewer import ViewerBehavior
from repro.core.features import extract_client_records
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.streaming.session import SessionConfig, simulate_session


@pytest.fixture(scope="module")
def ubuntu_condition():
    return figure2_conditions()[0]


@pytest.fixture(scope="module")
def behavior():
    return ViewerBehavior("20-25", "undisclosed", "undisclosed", "happy")


@pytest.fixture(scope="module")
def reference_session(study_graph, ubuntu_condition, behavior):
    return simulate_session(study_graph, ubuntu_condition, behavior, seed=900)


@pytest.fixture(scope="module")
def trained_attack(study_graph, ubuntu_condition, behavior):
    attack = WhiteMirrorAttack(graph=study_graph)
    attack.train(
        [
            simulate_session(study_graph, ubuntu_condition, behavior, seed=910 + index)
            for index in range(2)
        ]
    )
    return attack


def test_session_simulation_throughput(benchmark, study_graph, ubuntu_condition, behavior):
    """Wall-clock cost of simulating one full interactive viewing session."""
    result = benchmark.pedantic(
        simulate_session,
        args=(study_graph, ubuntu_condition, behavior),
        kwargs={"seed": 901},
        rounds=3,
        iterations=1,
    )
    assert result.path.choice_count == 10
    assert result.trace.packet_count > 1000


def test_dataset_generation_throughput(benchmark):
    """Wall-clock cost of generating a 5-viewer slice of the dataset."""
    dataset = benchmark.pedantic(
        IITMBandersnatchDataset.generate,
        kwargs={
            "viewer_count": 5,
            "seed": 11,
            "config": SessionConfig(cross_traffic_enabled=False),
        },
        rounds=1,
        iterations=1,
    )
    assert len(dataset) == 5


def test_feature_extraction_throughput(benchmark, reference_session):
    """Records/second through client-record extraction."""
    records = benchmark(
        extract_client_records,
        reference_session.trace,
        server_ip=reference_session.trace.server_ip,
    )
    assert len(records) > 100


def test_attack_classification_throughput(benchmark, trained_attack, reference_session):
    """End-to-end attack latency on one captured session."""
    result = benchmark(trained_attack.attack_session, reference_session)
    assert result.inferred.choice_count >= 9


def test_pcap_round_trip_throughput(benchmark, tmp_path, reference_session):
    """Cost of persisting and re-parsing one session capture."""
    from repro.net.capture import CapturedTrace

    path = tmp_path / "bench.pcap"

    def round_trip() -> int:
        reference_session.trace.to_pcap(path)
        restored = CapturedTrace.from_pcap(
            path,
            client_ip=reference_session.trace.client_ip,
            server_ip=reference_session.trace.server_ip,
        )
        return restored.packet_count

    count = benchmark.pedantic(round_trip, rounds=2, iterations=1)
    assert count == reference_session.trace.packet_count
