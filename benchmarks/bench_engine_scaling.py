"""Engine scaling benchmarks: workers=1 vs workers=N throughput.

Times dataset generation and the headline experiment through the batch
engine's serial path and its process pool, asserting on every run that the
two produce byte-identical results (the engine's core correctness contract).
On multi-core hardware the parallel run should be faster; the speedup
assertion is gated on the visible core count because single-core CI boxes
pay the process-pool overhead without any parallelism to amortise it.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.dataset.iitm import IITMBandersnatchDataset
from repro.experiments.headline import reproduce_headline
from repro.streaming.session import SessionConfig

from conftest import run_once

#: Workers used by the parallel legs (0 = all cores).
PARALLEL_WORKERS = 0

#: Cores needed before the wall-clock speedup assertion is meaningful.
SPEEDUP_MIN_CORES = 4

_DATASET_KWARGS = dict(
    viewer_count=6,
    seed=21,
    config=SessionConfig(cross_traffic_enabled=False),
)

_HEADLINE_KWARGS = dict(sessions_per_condition=2, training_sessions_per_condition=1, seed=3)


def _timed(function, **kwargs) -> tuple[float, object]:
    start = time.perf_counter()
    result = function(**kwargs)
    return time.perf_counter() - start, result


def test_dataset_generation_scaling(benchmark):
    """Dataset generation: serial vs pooled, equal output required."""
    serial_seconds, serial = _timed(IITMBandersnatchDataset.generate, **_DATASET_KWARGS)
    parallel_seconds, parallel = run_once(
        benchmark,
        _timed,
        IITMBandersnatchDataset.generate,
        workers=PARALLEL_WORKERS,
        **_DATASET_KWARGS,
    )
    assert [point.session.fingerprint() for point in serial.points] == [
        point.session.fingerprint() for point in parallel.points
    ]
    assert serial.points == parallel.points
    print(
        f"\ndataset generation: serial {serial_seconds:.2f}s, "
        f"workers={os.cpu_count()} pool {parallel_seconds:.2f}s "
        f"({serial_seconds / parallel_seconds:.2f}x)"
    )
    if (os.cpu_count() or 1) >= SPEEDUP_MIN_CORES:
        assert parallel_seconds < serial_seconds


def test_headline_experiment_scaling(benchmark):
    """Headline experiment: serial vs pooled, equal result required."""
    serial_seconds, serial = _timed(reproduce_headline, **_HEADLINE_KWARGS)
    parallel_seconds, parallel = run_once(
        benchmark,
        _timed,
        reproduce_headline,
        workers=PARALLEL_WORKERS,
        **_HEADLINE_KWARGS,
    )
    assert serial == parallel
    assert serial.worst_case_accuracy == pytest.approx(parallel.worst_case_accuracy)
    print(
        f"\nheadline experiment: serial {serial_seconds:.2f}s, "
        f"workers={os.cpu_count()} pool {parallel_seconds:.2f}s "
        f"({serial_seconds / parallel_seconds:.2f}x)"
    )
    if (os.cpu_count() or 1) >= SPEEDUP_MIN_CORES:
        assert parallel_seconds < serial_seconds
