"""Ablation D benchmark: fingerprint transfer across client environments.

DESIGN.md design decision 2.  Figure 2 shows the record-length bands shift
between Ubuntu and Windows; this ablation quantifies the consequence by
building the full (trained-on × attacked) transfer matrix over four
OS × browser environments.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablation_transfer import reproduce_transfer_ablation
from repro.experiments.report import format_table


def test_fingerprint_transfer_matrix(benchmark):
    result = run_once(
        benchmark,
        reproduce_transfer_ablation,
        sessions_per_environment=3,
        training_sessions_per_environment=2,
        seed=8,
    )

    print()
    print(
        format_table(
            result.rows(),
            "Ablation D — JSON identification accuracy when transferring fingerprints",
        )
    )
    print()
    print(
        f"mean same-environment accuracy:  {result.mean_diagonal:.3f}\n"
        f"mean cross-environment accuracy: {result.mean_off_diagonal:.3f}"
    )

    # Shape: near-perfect on the diagonal, near-zero off it — per-environment
    # calibration is a requirement of the attack, exactly as Figure 2 implies.
    assert result.mean_diagonal >= 0.95
    assert result.mean_off_diagonal <= 0.25
    assert result.calibration_is_required
