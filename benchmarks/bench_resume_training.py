"""Incremental training benchmark: batch vs shard-by-shard calibration.

``WhiteMirrorAttack.train`` needs every calibration session in memory at
once; :meth:`WhiteMirrorAttack.train_incremental` folds the same sessions in
one shard at a time through a :class:`FingerprintAccumulator`, keeping only
per-environment min/max/count state alive.  This benchmark trains both ways
over the same sharded on-disk dataset and measures peak Python-heap
allocation (``tracemalloc``) and wall time for each.

Two properties are asserted on every run:

* correctness — the incremental library is **identical** to the batch one
  (a band depends only on the extreme labelled lengths, which fold);
* memory — doubling the population roughly doubles the batch path's peak,
  while the incremental path's peak stays bounded by the (fixed) shard size,
  undercutting the batch peak on the larger population.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.collection import default_study_script
from repro.dataset.shards import ShardedDataset, generate_sharded_dataset
from repro.streaming.session import SessionConfig

from conftest import run_once

SEED = 47
SHARD_SIZE = 2
SMALL_POPULATION = 4
LARGE_POPULATION = 8
CONFIG = SessionConfig(cross_traffic_enabled=False)


def _measured(function, *args, **kwargs) -> tuple[int, float, object]:
    """Run ``function`` and return (peak traced bytes, seconds, result)."""
    tracemalloc.start()
    started = time.perf_counter()
    try:
        result = function(*args, **kwargs)
        elapsed = time.perf_counter() - started
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, elapsed, result


def _sharded_dataset(directory, viewer_count: int) -> ShardedDataset:
    return generate_sharded_dataset(
        directory,
        viewer_count=viewer_count,
        shard_count=viewer_count // SHARD_SIZE,
        seed=SEED,
        config=CONFIG,
    )


def _train_batch(dataset: ShardedDataset) -> WhiteMirrorAttack:
    """The memory profile the roadmap calls out: materialise, then train."""
    attack = WhiteMirrorAttack(graph=default_study_script())
    sessions = [
        session
        for shard in dataset.iter_shard_training_sessions()
        for session in shard
    ]
    attack.train(sessions)
    return attack


def _train_incremental(dataset: ShardedDataset) -> WhiteMirrorAttack:
    attack = WhiteMirrorAttack(graph=default_study_script())
    attack.train_incremental(dataset.iter_shard_training_sessions())
    return attack


def test_incremental_training_peak_memory_bounded_by_shard(benchmark, tmp_path):
    small = _sharded_dataset(tmp_path / "small", SMALL_POPULATION)
    large = _sharded_dataset(tmp_path / "large", LARGE_POPULATION)

    batch_small_peak, _, _ = _measured(_train_batch, small)
    batch_large_peak, batch_seconds, batch_attack = _measured(_train_batch, large)
    incremental_small_peak, _, _ = _measured(_train_incremental, small)
    incremental_large_peak, incremental_seconds, incremental_attack = run_once(
        benchmark, _measured, _train_incremental, large
    )

    # Correctness: shard-by-shard folding finalises into exactly the
    # fingerprints batch training learns from the concatenated sessions.
    assert incremental_attack.library.as_dict() == batch_attack.library.as_dict()

    batch_growth = batch_large_peak / batch_small_peak
    incremental_growth = incremental_large_peak / incremental_small_peak
    print(
        f"\ntraining peak heap, {SMALL_POPULATION} -> {LARGE_POPULATION} viewers "
        f"(shard size {SHARD_SIZE}):\n"
        f"  batch:       {batch_small_peak / 1e6:.1f} MB -> "
        f"{batch_large_peak / 1e6:.1f} MB ({batch_growth:.2f}x), "
        f"{batch_seconds:.1f}s on {LARGE_POPULATION} viewers\n"
        f"  incremental: {incremental_small_peak / 1e6:.1f} MB -> "
        f"{incremental_large_peak / 1e6:.1f} MB ({incremental_growth:.2f}x), "
        f"{incremental_seconds:.1f}s on {LARGE_POPULATION} viewers"
    )

    # Memory: the incremental path's peak is set by the engine window and the
    # O(environments) accumulator, not the population — doubling the
    # population must not double it — and it undercuts materialising the
    # whole calibration split.
    assert incremental_large_peak < batch_large_peak
    assert incremental_growth < 1.5
    assert incremental_growth < batch_growth
