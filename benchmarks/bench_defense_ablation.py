"""Ablation B benchmark: the Section VI countermeasures.

Paper (Conclusions/Countermeasures): "An easy fix for the problem would be to
either split the JSON file or to compress it so that it becomes
indistinguishable.  However, there could be timing side-channels that may
still exist even after this fix."

The benchmark sweeps padding (to a multiple, to a constant), splitting and
compression against an adaptive attacker that re-trains on defended traffic,
and also runs a record-length-blind timing attack to show the residual
channel the paper warns about.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.defense_ablation import reproduce_defense_ablation
from repro.experiments.report import format_table


def test_defense_ablation(benchmark):
    result = run_once(benchmark, reproduce_defense_ablation, train_count=4, test_count=4, seed=5)

    print()
    print(
        format_table(
            result.rows(),
            f"Ablation B — countermeasures vs adaptive attacker ({result.condition_key})",
        )
    )
    print()
    print(
        "residual timing channel under the strongest defence: "
        f"question recall = {result.best_defense.timing_question_recall:.2f}"
    )

    # Shape: with no defence the attack is essentially perfect; the paper's
    # suggested fixes (strong padding / splitting / compression) collapse the
    # record-length channel; and the timing channel survives all of them.
    assert result.undefended_accuracy >= 0.95
    assert result.best_defense.choice_accuracy <= 0.4
    assert result.evaluation_for("pad-to-constant(target_bytes=4096)").choice_accuracy <= 0.2
    assert result.evaluation_for("pad-to-multiple(block_bytes=64)").choice_accuracy >= 0.9
    assert result.timing_channel_survives
