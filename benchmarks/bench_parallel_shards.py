"""Shard-level parallel generation benchmark: serial vs ``shard_workers``.

PR 2/3 made shards independent, resumable dataset directories, but one
machine still generated them one after another.  ``shard_workers`` fans whole
shards out over a process pool — multiplying the per-session ``workers``
fan-out — so this benchmark measures the wall-clock speedup of a shard-level
pool over the serial path on the same plan, and asserts the property that
makes the parallelism free to adopt: the two runs' outputs (every pcap,
every metadata index, the shards manifest) are **byte-identical**.

Session simulation dominates shard generation and sessions are seeded from
``(dataset seed, viewer id)`` alone, so shards parallelise embarrassingly;
with 2 shard workers the expected speedup approaches 2x minus the pool's
spawn/pickle overhead (small against hundreds of milliseconds per session).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.dataset.format import snapshot_dataset_files
from repro.dataset.shards import generate_sharded_dataset
from repro.streaming.session import SessionConfig

from conftest import run_once

SEED = 53
VIEWERS = 6
SHARDS = 3
SHARD_WORKERS = 3
CONFIG = SessionConfig(cross_traffic_enabled=False)


def _generate(directory: Path, shard_workers: int | None = None):
    return generate_sharded_dataset(
        directory,
        viewer_count=VIEWERS,
        shard_count=SHARDS,
        seed=SEED,
        config=CONFIG,
        shard_workers=shard_workers,
    )


def test_shard_worker_speedup_with_byte_identical_output(benchmark, tmp_path):
    started = time.perf_counter()
    serial = _generate(tmp_path / "serial")
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_once(
        benchmark, _generate, tmp_path / "parallel", shard_workers=SHARD_WORKERS
    )
    parallel_seconds = time.perf_counter() - started

    # Correctness first: the shard-level pool must change nothing but the
    # wall clock.  Every file — pcaps, per-shard metadata, the manifest — is
    # compared byte for byte.
    assert parallel.summary() == serial.summary()
    assert snapshot_dataset_files(tmp_path / "parallel") == snapshot_dataset_files(
        tmp_path / "serial"
    )

    speedup = serial_seconds / parallel_seconds
    print(
        f"\nshard generation, {VIEWERS} viewers across {SHARDS} shards:\n"
        f"  serial:                  {serial_seconds:.2f}s\n"
        f"  shard_workers={SHARD_WORKERS}:         {parallel_seconds:.2f}s "
        f"({speedup:.2f}x)"
    )

    # The pool must pay for itself: shard generation is dominated by session
    # simulation (hundreds of milliseconds per session against a few
    # milliseconds of spawn/pickle overhead), so even a loaded CI box sees
    # the parallel run no slower than serial plus a modest safety factor.
    assert parallel_seconds < serial_seconds * 1.25
