"""Arena sweep benchmark: cell throughput and peak per-cell memory.

The arena's unit of work is the cell — simulate, defend, retrain the
attacker, score — and a sweep's wall-clock is cells × cell cost, whether
the cells run serially, in a ``--shard-workers`` pool, or leased across a
fleet.  This benchmark scores a small grid through the same
:func:`~repro.arena.cell.run_cell` every execution path uses and publishes:

* ``arena_cells_per_minute`` — end-to-end cell throughput on this runner;
* ``arena_peak_cell_bytes`` — peak traced Python-heap of one cell, the
  number that bounds per-worker memory when a pool scores cells
  concurrently (cells are independent, so pool peak ≈ workers × this).

It also re-scores one cell and asserts the canonical bytes are identical —
the determinism the resume and coordinator paths stand on, checked in the
same process that measures it.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.arena.cell import cell_to_json, run_cell
from repro.arena.grid import ArenaGrid

from conftest import run_once

DEFENSES = (
    "pad-to-multiple:block_bytes=64",
    "pad-to-constant:target_bytes=4096",
)
CLASSIFIERS = ("interval:margin=8",)
SEED = 29


def _cell_kwargs(grid, cell) -> dict:
    return dict(
        cell_id=cell.cell_id,
        condition=cell.condition,
        defense=cell.defense,
        classifier=cell.classifier,
        train_count=grid.train_count,
        test_count=grid.test_count,
        seed=grid.seed,
    )


def _score_grid(grid):
    """Score every cell serially; returns (results, elapsed seconds)."""
    started = time.perf_counter()
    results = [run_cell(**_cell_kwargs(grid, cell)) for cell in grid.cells()]
    return results, time.perf_counter() - started


def test_arena_sweep_throughput_and_cell_memory(benchmark):
    grid = ArenaGrid.from_axes(
        defenses=DEFENSES,
        classifiers=CLASSIFIERS,
        train_count=1,
        test_count=1,
        seed=SEED,
    )
    results, elapsed = run_once(benchmark, _score_grid, grid)
    cells_per_minute = len(results) / elapsed * 60.0

    # Peak heap of one representative (defended) cell, traced in isolation.
    last = grid.cells()[-1]
    tracemalloc.start()
    try:
        rescored = run_cell(**_cell_kwargs(grid, last))
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # The determinism pin: same cell spec, same canonical bytes.
    assert cell_to_json(rescored) == cell_to_json(results[-1])

    benchmark.extra_info.update(
        {
            "arena_cells_per_minute": cells_per_minute,
            "arena_peak_cell_bytes": float(peak),
        }
    )
    print(
        f"\narena sweep of {len(results)} cells: "
        f"{elapsed:.2f}s ({cells_per_minute:.1f} cells/minute), "
        f"peak cell heap {peak / 1e6:.1f}MB"
    )

    # Sanity, not a perf gate: the undefended baseline costs nothing and
    # the constant-padding cell pays the most overhead.
    undefended = results[0]["metrics"]
    padded = results[-1]["metrics"]
    assert undefended["overhead_bytes_per_session"] == 0.0
    assert padded["overhead_bytes_per_session"] > 0.0
