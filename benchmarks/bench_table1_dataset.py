"""Table I reproduction benchmark: the IITM-Bandersnatch attribute space.

Paper artefact: Table I ("Attributes of the IITM-Bandersnatch Dataset") —
the operational and behavioural attribute domains of the 100-viewer dataset.

This benchmark generates the full 100-viewer synthetic population, prints the
reproduced table plus the observed marginal counts, and checks that every
attribute value of the paper's grid is represented.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.table1 import reproduce_table1


def test_table1_attribute_space(benchmark):
    result = run_once(benchmark, reproduce_table1, viewer_count=100, seed=0)

    print()
    print(format_table(result.rows, "Table I — IITM-Bandersnatch dataset attributes"))
    marginal_rows = [
        {"attribute": attribute, "value": value, "viewers": count}
        for attribute, counts in sorted(result.observed_marginals.items())
        for value, count in sorted(counts.items())
    ]
    print()
    print(format_table(marginal_rows, "Observed attribute marginals (100 synthetic viewers)"))

    # Paper: two blocks, nine attribute rows, 100 viewers, full diversity.
    assert result.attribute_count == 9
    assert result.viewer_count == 100
    assert result.full_grid_covered()
