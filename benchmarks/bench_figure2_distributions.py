"""Figure 2 reproduction benchmark: SSL record-length distributions.

Paper artefact: Figure 2 — for (Desktop, Firefox, Ethernet, Ubuntu) and
(Desktop, Firefox, Ethernet, Windows), the percentage of client packets per
SSL-record-length bin, split into type-1 JSON / type-2 JSON / others, showing
that the three categories occupy disjoint length ranges.

The benchmark simulates several sessions per condition, bins client record
lengths into the paper's exact bin edges and prints both panels.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.features import LABEL_TYPE1, LABEL_TYPE2
from repro.experiments.conditions import figure2_condition_names
from repro.experiments.figure2 import reproduce_figure2
from repro.experiments.report import format_table


def test_figure2_record_length_distributions(benchmark):
    result = run_once(benchmark, reproduce_figure2, sessions_per_condition=4, seed=2)

    names = figure2_condition_names()
    print()
    for distribution in result.distributions:
        title = names[distribution.condition.fingerprint_key]
        print(format_table(distribution.rows(), f"Figure 2 — SSL record lengths, {title}"))
        print()

    # The paper's separation claim must hold in both panels: the JSON types
    # concentrate in their narrow bins and other traffic stays out of them.
    assert result.separation_holds_everywhere()

    ubuntu = result.panel_for("linux/firefox")
    assert ubuntu.histogram.dominant_bin(LABEL_TYPE1).label == "2211-2213"
    assert ubuntu.histogram.dominant_bin(LABEL_TYPE2).label == "2992-3017"
    windows = result.panel_for("windows/firefox")
    assert windows.histogram.dominant_bin(LABEL_TYPE1).label == "2341-2343"
    assert windows.histogram.dominant_bin(LABEL_TYPE2).label == "3118-3147"
