"""Figure 1 reproduction benchmark: the Bandersnatch streaming process.

Paper artefact: Figure 1 — the worked example where the viewer keeps the
default branch at Q1 (one type-1 JSON) and overrides the prefetched default
at Q2 (a second type-1 followed by a type-2, prefetched chunks discarded).

The benchmark simulates exactly that scenario and prints the protocol-level
event timeline; the assertions check the message sequence the figure shows.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure1 import reproduce_figure1


def test_figure1_streaming_process(benchmark):
    result = run_once(benchmark, reproduce_figure1, seed=1)

    print()
    print("Figure 1 — streaming process walkthrough (default at Q1, non-default at Q2)")
    print("=" * 76)
    for kind, detail in result.protocol_events:
        print(f"  {kind:<22s} {detail}")

    # The paper's sequence: type-1 at Q1, type-1 at Q2, then a type-2 because
    # the non-default branch was selected and the prefetched default dropped.
    assert result.state_message_kinds == ["type1", "type1", "type2"]
    assert result.matches_paper_description()
    assert result.session.path.default_pattern == (True, False)
