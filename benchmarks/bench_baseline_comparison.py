"""Ablation A benchmark: inter-video baselines vs. the White Mirror side-channel.

Paper motivation (Section II): prior encrypted-video techniques fingerprint
*which title* is streamed from downlink bitrate/burst patterns, but "inter-
video features cannot be used to differentiate between segments from the same
video" — every branch of an interactive title is encoded on the same ladder.

The benchmark runs the intra-video task (decide, per choice point, whether
the default or the alternative branch was streamed) with a Reed&Kranch-style
bitrate-profile classifier, a Schuster-style burst classifier and the White
Mirror record-length attack, and prints the accuracy table.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.baseline_comparison import reproduce_baseline_comparison
from repro.experiments.report import format_table


def test_baselines_vs_white_mirror(benchmark):
    result = run_once(benchmark, reproduce_baseline_comparison, train_count=6, test_count=6, seed=4)

    print()
    print(
        format_table(
            result.rows(),
            f"Ablation A — intra-video branch identification ({result.condition_key}, "
            f"{result.comparison.task_count} choice points)",
        )
    )

    comparison = result.comparison
    # Shape: the record-length side-channel is near-perfect, the coarse
    # inter-video features hover near a coin flip, and the gap is large.
    assert comparison.white_mirror_accuracy >= 0.9
    assert comparison.bitrate_baseline_accuracy <= 0.75
    assert comparison.burst_baseline_accuracy <= 0.75
    assert comparison.advantage >= 0.25
