"""Hot-path micro-benchmarks: batch band matching and zero-copy pcap ingest.

Unlike the experiment benchmarks (which reproduce paper artefacts), these two
measure the vectorized kernels against the scalar reference paths they
replaced, assert *exact* output equality, and enforce the contractual
speedups: >= 10x on batch classification and >= 3x on pcap ingest.  The
measured ratios and absolute rates land in ``benchmark.extra_info`` so
``check_perf_ratchet.py`` can gate regressions against the checked-in
baselines in ``BENCH_baselines.json``.
"""

from __future__ import annotations

import random
import struct
import time
from pathlib import Path

import numpy as np

from repro.core.features import ClientRecord
from repro.core.fingerprint import (
    FingerprintLibrary,
    LengthBand,
    RecordLengthFingerprint,
)
from repro.net.pcap import PcapWriter, read_pcap_columns

from conftest import run_once

SEED = 67
CLASSIFY_BATCH = 200_000
MIN_CLASSIFY_SPEEDUP = 10.0
INGEST_PACKETS = 30_000
MIN_INGEST_SPEEDUP = 3.0
REPETITIONS = 5


def _best_of(function, *args) -> tuple[float, object]:
    """Steady-state seconds (min over repetitions) and the last result.

    Both the scalar and the vectorized path get the same treatment, so the
    ratio compares like with like — neither side is charged first-call
    allocator or page-fault noise the real pipeline amortises away.
    """
    best = float("inf")
    result = None
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        result = function(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def _build_library(environment_count: int) -> FingerprintLibrary:
    rng = random.Random(SEED)
    library = FingerprintLibrary()
    for index in range(environment_count):
        low1 = rng.randint(100, 400)
        high1 = low1 + rng.randint(5, 40)
        low2 = high1 + rng.randint(10, 120)
        high2 = low2 + rng.randint(5, 40)
        library.add(
            RecordLengthFingerprint(
                condition_key=f"os-{index}/browser-{index}",
                type1_band=LengthBand(low1, high1),
                type2_band=LengthBand(low2, high2),
                training_records=100,
            )
        )
    return library


def _classification_workload() -> dict[str, float]:
    library = _build_library(environment_count=6)
    rng = random.Random(SEED + 1)
    edges = [
        bound
        for fingerprint in (library.get(key) for key in library.condition_keys)
        for band in (fingerprint.type1_band, fingerprint.type2_band)
        for bound in (band.low, band.high)
    ]
    lengths = [
        rng.choice(edges) + rng.randint(-1, 1)
        if rng.random() < 0.3
        else rng.randint(6, 2_000)
        for _ in range(CLASSIFY_BATCH)
    ]
    # The two sides consume the batch as their pipelines actually deliver
    # it: the scalar baseline walks ClientRecord objects (the replaced
    # per-record loop, verbatim), the vectorized path takes the columnar
    # int64 array the sidecar hands it.
    records = [
        ClientRecord(timestamp=0.0, wire_length=length, content_type=23)
        for length in lengths
    ]
    columnar = np.asarray(lengths, dtype=np.int64)

    scalar_seconds, scalar = _best_of(
        lambda: {
            key: [
                library.get(key).classify_length(record.wire_length)
                for record in records
            ]
            for key in library.condition_keys
        }
    )
    vectorized_seconds, vectorized = _best_of(library.classify_lengths, columnar)

    assert vectorized == scalar  # byte-for-byte the same verdicts
    comparisons = CLASSIFY_BATCH * len(library.condition_keys)
    return {
        "classify_speedup": scalar_seconds / vectorized_seconds,
        "classify_lengths_per_s": comparisons / vectorized_seconds,
        "classify_scalar_seconds": scalar_seconds,
        "classify_vectorized_seconds": vectorized_seconds,
    }


def test_batch_classification_speedup(benchmark):
    metrics = run_once(benchmark, _classification_workload)
    benchmark.extra_info.update(metrics)
    print(
        f"\nbatch classification ({CLASSIFY_BATCH} lengths x 6 environments):\n"
        f"  scalar oracle:  {metrics['classify_scalar_seconds'] * 1e3:.1f}ms\n"
        f"  vectorized:     {metrics['classify_vectorized_seconds'] * 1e3:.1f}ms "
        f"({metrics['classify_lengths_per_s'] / 1e6:.1f}M comparisons/s)\n"
        f"  speedup:        {metrics['classify_speedup']:.1f}x"
    )
    assert metrics["classify_speedup"] >= MIN_CLASSIFY_SPEEDUP


def _write_synthetic_pcap(path: Path) -> None:
    rng = random.Random(SEED + 2)
    pool = bytes(rng.getrandbits(8) for _ in range(1 << 16))
    with PcapWriter(path) as writer:
        clock = 0.0
        for index in range(INGEST_PACKETS):
            clock += rng.random() * 1e-3
            size = rng.randint(60, 1_500)
            offset = rng.randint(0, len(pool) - size)
            writer.write(clock, pool[offset : offset + size])


def _legacy_read(path: Path) -> tuple[list[float], list[bytes]]:
    """The pre-vectorization reader: one struct.unpack and one bytes copy
    per packet over an owned in-memory copy of the whole file."""
    raw = path.read_bytes()
    magic = struct.unpack("<I", raw[:4])[0]
    order = "<" if magic == 0xA1B2C3D4 else ">"
    offset = 24
    timestamps: list[float] = []
    frames: list[bytes] = []
    while offset < len(raw):
        seconds, microseconds, captured, _original = struct.unpack(
            f"{order}IIII", raw[offset : offset + 16]
        )
        offset += 16
        timestamps.append(seconds + microseconds / 1_000_000)
        frames.append(bytes(raw[offset : offset + captured]))
        offset += captured
    return timestamps, frames


def _ingest_workload(path: Path) -> dict[str, float]:
    legacy_seconds, (legacy_timestamps, legacy_frames) = _best_of(_legacy_read, path)
    vectorized_seconds, columns = _best_of(read_pcap_columns, path)

    assert columns.packet_count == INGEST_PACKETS
    assert columns.timestamps.tolist() == legacy_timestamps
    rng = random.Random(SEED + 3)
    for index in rng.sample(range(INGEST_PACKETS), 500):
        assert bytes(columns.frame(index)) == legacy_frames[index]

    return {
        "ingest_speedup": legacy_seconds / vectorized_seconds,
        "ingest_packets_per_s": INGEST_PACKETS / vectorized_seconds,
        "ingest_legacy_seconds": legacy_seconds,
        "ingest_vectorized_seconds": vectorized_seconds,
    }


def test_pcap_ingest_speedup(benchmark, tmp_path):
    path = tmp_path / "synthetic.pcap"
    _write_synthetic_pcap(path)
    metrics = run_once(benchmark, _ingest_workload, path)
    benchmark.extra_info.update(metrics)
    print(
        f"\npcap ingest ({INGEST_PACKETS} packets, "
        f"{path.stat().st_size / 1e6:.1f}MB):\n"
        f"  legacy copy loop: {metrics['ingest_legacy_seconds'] * 1e3:.1f}ms\n"
        f"  zero-copy columns: {metrics['ingest_vectorized_seconds'] * 1e3:.1f}ms "
        f"({metrics['ingest_packets_per_s'] / 1e6:.2f}M packets/s)\n"
        f"  speedup:           {metrics['ingest_speedup']:.1f}x"
    )
    assert metrics["ingest_speedup"] >= MIN_INGEST_SPEEDUP
